//! Bit-exact snapshots of the Holt-Winters family.
//!
//! A long-running serving deployment (see `sofia-fleet`) checkpoints
//! whole models, and models built *on* Holt-Winters components need the
//! components themselves to serialize. This module gives each member of
//! the family — the additive [`HoltWinters`], the [`MultiplicativeHw`]
//! variant, and the damped-trend [`DampedHw`] — a self-describing,
//! line-oriented text snapshot with floats encoded as IEEE 754 bit
//! patterns, so `restore(snapshot(m))` reproduces `m`'s future outputs
//! byte-identically.
//!
//! `sofia-timeseries` sits *below* `sofia-core` in the dependency order,
//! so the formats here are deliberately dependency-free; `sofia-core`'s
//! v2 checkpoint envelope wraps payloads like these without either crate
//! knowing about the other's framing.

use crate::holt_winters::{HoltWinters, HwParams, HwState};
use crate::variants::{DampedHw, MultiplicativeHw};
use std::fmt::Write as _;

/// Error raised while parsing a Holt-Winters snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotParseError(pub String);

impl std::fmt::Display for SnapshotParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed Holt-Winters snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotParseError {}

fn err(what: impl Into<String>) -> SnapshotParseError {
    SnapshotParseError(what.into())
}

fn push_f64s(out: &mut String, label: &str, values: impl IntoIterator<Item = f64>) {
    let _ = write!(out, "{label}");
    for v in values {
        let _ = write!(out, " {:016x}", v.to_bits());
    }
    out.push('\n');
}

fn parse_f64s(line: &str, label: &str) -> Result<Vec<f64>, SnapshotParseError> {
    let rest = line
        .strip_prefix(label)
        .ok_or_else(|| err(format!("expected `{label}`")))?;
    rest.split_whitespace()
        .map(|tok| {
            u64::from_str_radix(tok, 16)
                .map(f64::from_bits)
                .map_err(|_| err(format!("bad float in `{label}`")))
        })
        .collect()
}

fn parse_usize(line: &str, label: &str) -> Result<usize, SnapshotParseError> {
    line.strip_prefix(label)
        .ok_or_else(|| err(format!("expected `{label}`")))?
        .trim()
        .parse()
        .map_err(|_| err(format!("bad integer in `{label}`")))
}

/// Shared scalar block: params, level/trend, phase, seasonal ring.
fn push_common(
    out: &mut String,
    params: &HwParams,
    level: f64,
    trend: f64,
    phase: usize,
    seasonal: &[f64],
) {
    push_f64s(out, "params", [params.alpha, params.beta, params.gamma]);
    push_f64s(out, "level_trend", [level, trend]);
    let _ = writeln!(out, "phase {phase}");
    push_f64s(out, "seasonal", seasonal.iter().copied());
}

struct Common {
    params: HwParams,
    level: f64,
    trend: f64,
    phase: usize,
    seasonal: Vec<f64>,
}

fn parse_common<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
) -> Result<Common, SnapshotParseError> {
    let mut next = |what: &str| {
        lines
            .next()
            .ok_or_else(|| err(format!("unexpected EOF at {what}")))
    };
    let p = parse_f64s(next("params")?, "params")?;
    if p.len() != 3 {
        return Err(err("params arity"));
    }
    if ![p[0], p[1], p[2]].iter().all(|v| (0.0..=1.0).contains(v)) {
        return Err(err("params out of [0,1]"));
    }
    let lt = parse_f64s(next("level_trend")?, "level_trend")?;
    if lt.len() != 2 {
        return Err(err("level_trend arity"));
    }
    let phase = parse_usize(next("phase")?, "phase")?;
    let seasonal = parse_f64s(next("seasonal")?, "seasonal")?;
    if seasonal.is_empty() || phase >= seasonal.len() {
        return Err(err("seasonal/phase out of range"));
    }
    Ok(Common {
        params: HwParams::new(p[0], p[1], p[2]),
        level: lt[0],
        trend: lt[1],
        phase,
        seasonal,
    })
}

fn check_header<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    expected: &str,
) -> Result<(), SnapshotParseError> {
    match lines.next() {
        Some(h) if h.trim_end() == expected => Ok(()),
        _ => Err(err(format!("missing `{expected}` header"))),
    }
}

impl HoltWinters {
    /// Serializes the model (params + full state) bit-exactly.
    pub fn snapshot(&self) -> String {
        let mut out = String::from("holt-winters v1\n");
        let st = self.state();
        push_common(
            &mut out,
            self.params(),
            st.level,
            st.trend,
            st.phase,
            &st.seasonal,
        );
        out
    }

    /// Restores a model from [`HoltWinters::snapshot`] text.
    pub fn restore(text: &str) -> Result<Self, SnapshotParseError> {
        let mut lines = text.lines();
        check_header(&mut lines, "holt-winters v1")?;
        let c = parse_common(&mut lines)?;
        Ok(HoltWinters::new(
            c.params,
            HwState::new(c.level, c.trend, c.seasonal, c.phase),
        ))
    }
}

impl MultiplicativeHw {
    /// Serializes the model (params + full state) bit-exactly.
    pub fn snapshot(&self) -> String {
        let mut out = String::from("multiplicative-hw v1\n");
        push_common(
            &mut out,
            self.params(),
            self.level(),
            self.trend(),
            self.phase(),
            self.seasonal(),
        );
        out
    }

    /// Restores a model from [`MultiplicativeHw::snapshot`] text.
    pub fn restore(text: &str) -> Result<Self, SnapshotParseError> {
        let mut lines = text.lines();
        check_header(&mut lines, "multiplicative-hw v1")?;
        let c = parse_common(&mut lines)?;
        if c.level <= 0.0 || c.seasonal.iter().any(|&s| s <= 0.0) {
            return Err(err("multiplicative model needs positive level and ratios"));
        }
        Ok(MultiplicativeHw::new(
            c.params, c.level, c.trend, c.seasonal, c.phase,
        ))
    }
}

impl DampedHw {
    /// Serializes the model (params + damping + full state) bit-exactly.
    pub fn snapshot(&self) -> String {
        let mut out = String::from("damped-hw v1\n");
        push_f64s(&mut out, "damping", [self.damping]);
        push_common(
            &mut out,
            self.params(),
            self.level(),
            self.trend(),
            self.phase(),
            self.seasonal(),
        );
        out
    }

    /// Restores a model from [`DampedHw::snapshot`] text.
    pub fn restore(text: &str) -> Result<Self, SnapshotParseError> {
        let mut lines = text.lines();
        check_header(&mut lines, "damped-hw v1")?;
        let damping = parse_f64s(
            lines
                .next()
                .ok_or_else(|| err("unexpected EOF at damping"))?,
            "damping",
        )?;
        let &[damping] = damping.as_slice() else {
            return Err(err("damping arity"));
        };
        if !(damping > 0.0 && damping <= 1.0) {
            return Err(err("damping out of (0, 1]"));
        }
        let c = parse_common(&mut lines)?;
        Ok(DampedHw::new(
            c.params, damping, c.level, c.trend, c.seasonal, c.phase,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_roundtrip_is_bit_exact() {
        let mut hw = HoltWinters::new(
            HwParams::new(0.4, 0.2, 0.15),
            HwState::new(3.5, -0.25, vec![1.0, -0.5, 0.75], 2),
        );
        for t in 0..7 {
            hw.update(2.0 + (t as f64 * 0.7).sin());
        }
        let mut restored = HoltWinters::restore(&hw.snapshot()).expect("restore");
        assert_eq!(hw, restored);
        for t in 0..10 {
            let y = -1.0 + 0.3 * t as f64;
            assert_eq!(hw.update(y).to_bits(), restored.update(y).to_bits());
        }
    }

    #[test]
    fn multiplicative_roundtrip_is_bit_exact() {
        let mut hw = MultiplicativeHw::new(
            HwParams::new(0.3, 0.1, 0.2),
            10.0,
            0.4,
            vec![1.3, 0.7, 1.0, 1.0],
            1,
        );
        for t in 0..9 {
            hw.update(9.0 + t as f64);
        }
        let mut restored = MultiplicativeHw::restore(&hw.snapshot()).expect("restore");
        assert_eq!(hw, restored);
        for t in 0..8 {
            let y = 15.0 + 0.5 * t as f64;
            assert_eq!(hw.update(y).to_bits(), restored.update(y).to_bits());
        }
    }

    #[test]
    fn damped_roundtrip_is_bit_exact() {
        let mut hw = DampedHw::new(
            HwParams::new(0.35, 0.15, 0.05),
            0.85,
            4.0,
            0.6,
            vec![0.2, -0.2],
            0,
        );
        for t in 0..6 {
            hw.update(4.0 + 0.4 * t as f64);
        }
        let mut restored = DampedHw::restore(&hw.snapshot()).expect("restore");
        assert_eq!(hw, restored);
        for h in 1..=5 {
            assert_eq!(hw.forecast(h).to_bits(), restored.forecast(h).to_bits());
        }
        for t in 0..8 {
            let y = 7.0 - 0.2 * t as f64;
            assert_eq!(hw.update(y).to_bits(), restored.update(y).to_bits());
        }
    }

    #[test]
    fn snapshots_reject_cross_family_and_garbage() {
        let add = HoltWinters::new(HwParams::default(), HwState::new(0.0, 0.0, vec![0.0; 3], 0));
        assert!(MultiplicativeHw::restore(&add.snapshot()).is_err());
        assert!(DampedHw::restore(&add.snapshot()).is_err());
        assert!(HoltWinters::restore("not a snapshot").is_err());
        assert!(HoltWinters::restore("").is_err());
        // Truncation is an error, never a panic.
        let text = add.snapshot();
        let cut = text.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(HoltWinters::restore(&cut).is_err());
        // Out-of-range phase is rejected before the constructor asserts.
        let bad = text.replace("phase 0", "phase 9");
        assert!(HoltWinters::restore(&bad).is_err());
    }
}
