//! The approximate half of the observability pair: a deterministic
//! merging t-digest for tail quantiles.

use crate::{parse_f64s_exact, parse_usize_field, total_max, total_min, MAX_WIRE_CENTROIDS};
use sofia_core::checkpoint::CheckpointError;
use sofia_core::snapshot::wire;

/// Compression parameter δ of every digest in the stack.
///
/// Fixed crate-wide (rather than carried per digest) because two digests
/// can only merge deterministically when they agree on the scale
/// function; ~δ·1.6 centroids are retained, so memory per digest is a
/// few KiB.
pub const COMPRESSION: f64 = 100.0;

/// Unmerged observations buffered before a compaction pass; a larger
/// buffer amortizes sorting, a smaller one bounds the extra memory.
const BUFFER_CAP: usize = 128;

/// One weighted centroid: `weight` observations averaging `mean`.
/// Weights are integer-valued f64s (every observation has weight 1), so
/// weight sums stay exact below 2⁵³.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Centroid {
    mean: f64,
    weight: f64,
}

/// A mergeable quantile sketch (Dunning's merging t-digest, k₁ scale).
///
/// The digest keeps at most ~1.6·δ weighted centroids whose sizes follow
/// the k₁ scale function `k(q) = δ/2π · asin(2q−1)`: centroids near the
/// median are large, centroids near the edges shrink to single
/// observations — which is exactly where p99/p99.9 questions live.
///
/// **Accuracy bound.** One k-unit of the scale function spans
/// `Δq = (2π/δ)·√(q(1−q))` of the population — ≈ 3.1% of ranks at the
/// median for δ = 100, ≈ 0.6% at p99, shrinking to single observations
/// at the extremes. Centroid weights respect the k-limit, and the
/// quantile estimate interpolates between the two centroids bracketing
/// the target rank, so its rank error is a small constant multiple of
/// one k-unit *at the probed quantile* (adversarial distributions —
/// values spanning hundreds of orders of magnitude around the target —
/// can use most of that bracket). Tests in this crate pin a
/// `3·Δq(q)·n + 3` rank tolerance at every probed quantile: tightest at
/// the tails, which is exactly where p99/p99.9 questions live.
///
/// **Determinism.** Compaction sorts centroids by `(mean, weight)` under
/// the IEEE total order and folds left-to-right, so equal inputs produce
/// equal bits and [`TDigest::merge`] is commutative bit-exactly;
/// `merge(a, b)` generally differs from the digest of the concatenated
/// samples only within the accuracy bound above. Non-finite observations
/// are ignored (crate policy).
#[derive(Debug, Clone, PartialEq)]
pub struct TDigest {
    /// Compacted centroids, means non-descending.
    centroids: Vec<Centroid>,
    /// Observations not yet compacted into `centroids`.
    buffer: Vec<f64>,
    min: f64,
    max: f64,
}

impl Default for TDigest {
    fn default() -> Self {
        TDigest::new()
    }
}

/// The k₁ scale function `k(q) = δ/2π · asin(2q−1)`.
fn k_scale(q: f64) -> f64 {
    COMPRESSION / (2.0 * std::f64::consts::PI) * (2.0 * q.clamp(0.0, 1.0) - 1.0).asin()
}

impl TDigest {
    /// The empty digest (identity element of [`TDigest::merge`]).
    pub fn new() -> Self {
        TDigest {
            centroids: Vec::new(),
            buffer: Vec::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds in one observation; non-finite values are ignored.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.min = total_min(self.min, x);
        self.max = total_max(self.max, x);
        self.buffer.push(x);
        if self.buffer.len() >= BUFFER_CAP {
            self.compact();
        }
    }

    /// Number of observations absorbed (weight sum; saturates above
    /// 2⁶⁴, far past the exact-integer range anyway).
    pub fn count(&self) -> u64 {
        let w: f64 = self.centroids.iter().map(|c| c.weight).sum();
        (w + self.buffer.len() as f64) as u64
    }

    /// Smallest observation, `None` while empty.
    pub fn min(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Largest observation, `None` while empty.
    pub fn max(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Whether the digest holds no observations.
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty() && self.buffer.is_empty()
    }

    /// Absorbs another digest. Commutative bit-exactly (see type docs);
    /// folds over three or more digests must fix their fold order to be
    /// bit-reproducible.
    pub fn merge(&mut self, other: &TDigest) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            // Copy verbatim: re-compressing here would merge further
            // than the incremental build did, breaking both the
            // identity law and bit-exact commutativity.
            *self = other.clone();
            return;
        }
        self.min = total_min(self.min, other.min);
        self.max = total_max(self.max, other.max);
        let mut all = std::mem::take(&mut self.centroids);
        all.extend(self.buffer.drain(..).map(|x| Centroid {
            mean: x,
            weight: 1.0,
        }));
        all.extend(other.centroids.iter().copied());
        all.extend(other.buffer.iter().map(|&x| Centroid {
            mean: x,
            weight: 1.0,
        }));
        self.centroids = compress(all);
    }

    /// Folds the buffered observations into the centroid list.
    fn compact(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut all = std::mem::take(&mut self.centroids);
        all.extend(self.buffer.drain(..).map(|x| Centroid {
            mean: x,
            weight: 1.0,
        }));
        self.centroids = compress(all);
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`), `None`
    /// while empty. Interpolates linearly between centroid midpoints,
    /// anchored at the exact min/max at the edges.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let view = if self.buffer.is_empty() {
            None
        } else {
            let mut flushed = self.clone();
            flushed.compact();
            Some(flushed)
        };
        let cents = &view.as_ref().unwrap_or(self).centroids;
        let total: f64 = cents.iter().map(|c| c.weight).sum();
        if total <= 0.0 || total.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let target = q * total;

        // Cumulative midpoint of each centroid: half its weight sits on
        // either side of its mean.
        let mut before = 0.0;
        let first_mid = cents[0].weight / 2.0;
        if target <= first_mid {
            // Between the exact minimum and the first centroid's mean.
            let t = if first_mid > 0.0 {
                target / first_mid
            } else {
                1.0
            };
            return Some(self.min + t * (cents[0].mean - self.min));
        }
        for i in 0..cents.len() - 1 {
            let mid_i = before + cents[i].weight / 2.0;
            let mid_next = before + cents[i].weight + cents[i + 1].weight / 2.0;
            if target <= mid_next {
                let span = mid_next - mid_i;
                let t = if span > 0.0 {
                    (target - mid_i) / span
                } else {
                    1.0
                };
                return Some(cents[i].mean + t * (cents[i + 1].mean - cents[i].mean));
            }
            before += cents[i].weight;
        }
        // Between the last centroid's mean and the exact maximum.
        let last = cents[cents.len() - 1];
        let last_mid = before + last.weight / 2.0;
        let span = total - last_mid;
        let t = if span > 0.0 {
            ((target - last_mid) / span).clamp(0.0, 1.0)
        } else {
            1.0
        };
        Some(last.mean + t * (self.max - last.mean))
    }

    /// Appends the four-line wire form (see [`TDigest::from_lines`]).
    /// Buffered observations are compacted into the emitted centroids,
    /// so emit → parse → emit is byte-identical.
    pub fn push_wire(&self, out: &mut String) {
        let view = if self.buffer.is_empty() {
            None
        } else {
            let mut flushed = self.clone();
            flushed.compact();
            Some(flushed)
        };
        let cents = &view.as_ref().unwrap_or(self).centroids;
        out.push_str("tdigest ");
        out.push_str(&cents.len().to_string());
        out.push('\n');
        wire::push_f64s(out, "tmeans", cents.iter().map(|c| c.mean));
        wire::push_f64s(out, "tweights", cents.iter().map(|c| c.weight));
        wire::push_f64s(out, "trange", [self.min, self.max]);
    }

    /// Parses the four-line wire form:
    ///
    /// ```text
    /// tdigest <k>
    /// tmeans <k hex floats, non-descending>
    /// tweights <k hex floats, finite and positive>
    /// trange <min> <max>
    /// ```
    ///
    /// Total over hostile input: `k` is bounded by
    /// [`MAX_WIRE_CENTROIDS`] before any allocation, counts must match,
    /// means must be finite and non-descending, weights finite and
    /// positive — violations are typed errors, never panics. The
    /// `trange` bits round-trip verbatim (the empty digest legitimately
    /// carries ±∞ sentinels there).
    pub fn from_lines(lines: [&str; 4]) -> Result<Self, CheckpointError> {
        let k = parse_usize_field(lines[0], "tdigest")?;
        if k > MAX_WIRE_CENTROIDS {
            return Err(CheckpointError::Malformed(format!(
                "digest claims {k} centroids (max {MAX_WIRE_CENTROIDS})"
            )));
        }
        let means = parse_f64s_exact(lines[1], "tmeans", k)?;
        let weights = parse_f64s_exact(lines[2], "tweights", k)?;
        let range = parse_f64s_exact(lines[3], "trange", 2)?;
        for pair in means.windows(2) {
            if pair[1].total_cmp(&pair[0]) == std::cmp::Ordering::Less {
                return Err(CheckpointError::Malformed(
                    "digest means must be non-descending".into(),
                ));
            }
        }
        if means.iter().any(|m| !m.is_finite()) {
            return Err(CheckpointError::Malformed(
                "digest means must be finite".into(),
            ));
        }
        if weights.iter().any(|w| !w.is_finite() || *w <= 0.0) {
            return Err(CheckpointError::Malformed(
                "digest weights must be finite and positive".into(),
            ));
        }
        Ok(TDigest {
            centroids: means
                .into_iter()
                .zip(weights)
                .map(|(mean, weight)| Centroid { mean, weight })
                .collect(),
            buffer: Vec::new(),
            min: range[0],
            max: range[1],
        })
    }
}

/// Sorts centroids canonically and folds adjacent ones while the k₁
/// scale allows, left-to-right. Deterministic: the sort key includes the
/// weight, so any permutation of the same multiset compresses to the
/// same bits.
fn compress(mut cents: Vec<Centroid>) -> Vec<Centroid> {
    if cents.is_empty() {
        return cents;
    }
    cents.sort_by(|a, b| {
        a.mean
            .total_cmp(&b.mean)
            .then_with(|| a.weight.total_cmp(&b.weight))
    });
    let total: f64 = cents.iter().map(|c| c.weight).sum();
    let mut out: Vec<Centroid> = Vec::with_capacity(cents.len());
    let mut cur = cents[0];
    // Weight fully emitted before `cur`; k-limit for the growing `cur`.
    let mut done = 0.0;
    let mut k_floor = k_scale(0.0);
    for &c in &cents[1..] {
        let q_if_merged = (done + cur.weight + c.weight) / total;
        if k_scale(q_if_merged) - k_floor <= 1.0 {
            // Merge c into cur (weighted mean; weights are exact ints).
            let w = cur.weight + c.weight;
            cur.mean += (c.mean - cur.mean) * (c.weight / w);
            cur.weight = w;
        } else {
            done += cur.weight;
            k_floor = k_scale(done / total);
            out.push(cur);
            cur = c;
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(values: impl IntoIterator<Item = f64>) -> TDigest {
        let mut d = TDigest::new();
        for v in values {
            d.observe(v);
        }
        d
    }

    /// Rank interval of `value` in the sorted samples: `[strictly
    /// below, at or below]` — an interval because duplicated sample
    /// values occupy a whole range of ranks.
    fn rank_interval(sorted: &[f64], value: f64) -> (f64, f64) {
        let lo = sorted.partition_point(|&s| s < value);
        let hi = sorted.partition_point(|&s| s <= value);
        (lo as f64, hi as f64)
    }

    /// Asserts every probed quantile is within the documented rank
    /// tolerance of the true sample quantile.
    fn assert_rank_accurate(d: &TDigest, samples: &[f64], label: &str) {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        for q in [0.0f64, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            // Documented bound: 3 k-units of rank at the probed q.
            let tol =
                3.0 * (2.0 * std::f64::consts::PI / COMPRESSION) * (q * (1.0 - q)).sqrt() * n + 3.0;
            let est = d.quantile(q).expect("non-empty");
            let (lo, hi) = rank_interval(&sorted, est);
            let target = q * n;
            assert!(
                lo - tol <= target && target <= hi + tol,
                "{label}: q={q} est={est} ranks=[{lo}, {hi}] target={target} n={n}"
            );
        }
    }

    #[test]
    fn empty_digest_answers_none() {
        let d = TDigest::new();
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.min(), None);
        assert_eq!(d.count(), 0);
        assert!(d.is_empty());
    }

    #[test]
    fn single_observation_is_every_quantile() {
        let d = digest_of([7.5]);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(d.quantile(q), Some(7.5));
        }
        assert_eq!(d.count(), 1);
    }

    #[test]
    fn small_sets_are_near_exact() {
        let d = digest_of((1..=100).map(|i| i as f64));
        assert_eq!(d.quantile(0.0), Some(1.0));
        assert_eq!(d.quantile(1.0), Some(100.0));
        let p50 = d.quantile(0.5).unwrap();
        assert!((p50 - 50.5).abs() <= 2.0, "p50={p50}");
        let p99 = d.quantile(0.99).unwrap();
        assert!((p99 - 99.0).abs() <= 1.5, "p99={p99}");
    }

    #[test]
    fn large_uniform_sample_within_rank_bound() {
        // Deterministic LCG samples in [0, 1).
        let mut state = 0x2545f4914f6cdd1du64;
        let samples: Vec<f64> = (0..20_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let d = digest_of(samples.iter().copied());
        assert_rank_accurate(&d, &samples, "uniform-20k");
        assert_eq!(d.count(), 20_000);
    }

    #[test]
    fn non_finite_observations_ignored() {
        let mut d = digest_of([1.0, 2.0]);
        d.observe(f64::NAN);
        d.observe(f64::INFINITY);
        assert_eq!(d.count(), 2);
        assert_eq!(d.max(), Some(2.0));
    }

    #[test]
    fn merge_is_commutative_bit_exactly() {
        let a = digest_of((0..500).map(|i| (i as f64).sin() * 100.0));
        let b = digest_of((0..300).map(|i| (i as f64) * 0.25 - 40.0));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_agrees_with_concatenated_samples() {
        let left: Vec<f64> = (0..4000).map(|i| (i as f64 * 0.7).cos() * 50.0).collect();
        let right: Vec<f64> = (0..6000).map(|i| 10.0 + (i % 97) as f64).collect();
        let mut merged = digest_of(left.iter().copied());
        merged.merge(&digest_of(right.iter().copied()));
        let all: Vec<f64> = left.iter().chain(&right).copied().collect();
        assert_rank_accurate(&merged, &all, "merged");
        assert_rank_accurate(&digest_of(all.iter().copied()), &all, "concat");
        assert_eq!(merged.count(), 10_000);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = digest_of((0..200).map(|i| i as f64));
        let mut left = TDigest::new();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&TDigest::new());
        assert_eq!(left, a, "merging into the empty digest copies verbatim");
        assert_eq!(right, a, "merging the empty digest is a no-op");
    }

    #[test]
    fn compression_keeps_centroid_count_bounded() {
        let d = digest_of((0..50_000).map(|i| (i as f64).sqrt()));
        let mut flushed = d.clone();
        flushed.compact();
        assert!(
            flushed.centroids.len() <= (2.0 * COMPRESSION) as usize,
            "{} centroids",
            flushed.centroids.len()
        );
    }

    #[test]
    fn wire_round_trips_bit_exactly() {
        let d = digest_of([1.5, -0.0, 1e-310, 42.0, 1e300, -7.25]);
        let mut text = String::new();
        d.push_wire(&mut text);
        let lines: Vec<&str> = text.lines().collect();
        let back = TDigest::from_lines([lines[0], lines[1], lines[2], lines[3]]).unwrap();
        let mut again = String::new();
        back.push_wire(&mut again);
        assert_eq!(again, text, "emit -> parse -> emit is the identity");
        assert_eq!(back.min(), d.min());
        assert_eq!(back.max(), d.max());
    }

    #[test]
    fn empty_wire_round_trips() {
        let d = TDigest::new();
        let mut text = String::new();
        d.push_wire(&mut text);
        let lines: Vec<&str> = text.lines().collect();
        let back = TDigest::from_lines([lines[0], lines[1], lines[2], lines[3]]).unwrap();
        assert!(back.is_empty());
        assert_eq!(back, d);
    }

    #[test]
    fn wire_rejects_malformed_never_panics() {
        let ok = [
            "tdigest 1",
            "tmeans 3ff0000000000000",
            "tweights 3ff0000000000000",
            "trange 3ff0000000000000 3ff0000000000000",
        ];
        assert!(TDigest::from_lines(ok).is_ok());
        let nan = format!("tmeans {:016x}", f64::NAN.to_bits());
        let neg = format!("tweights {:016x}", (-1.0f64).to_bits());
        let inf = format!("tweights {:016x}", f64::INFINITY.to_bits());
        let cases: Vec<[String; 4]> = vec![
            // claimed count mismatch
            ["tdigest 2".into(), ok[1].into(), ok[2].into(), ok[3].into()],
            // oversized claim rejected before allocation
            [
                format!("tdigest {}", MAX_WIRE_CENTROIDS + 1),
                ok[1].into(),
                ok[2].into(),
                ok[3].into(),
            ],
            // NaN mean
            ["tdigest 1".into(), nan, ok[2].into(), ok[3].into()],
            // non-positive / non-finite weights
            ["tdigest 1".into(), ok[1].into(), neg, ok[3].into()],
            ["tdigest 1".into(), ok[1].into(), inf, ok[3].into()],
            [
                "tdigest 1".into(),
                ok[1].into(),
                "tweights 0".into(),
                ok[3].into(),
            ],
            // descending means
            [
                "tdigest 2".into(),
                "tmeans 4000000000000000 3ff0000000000000".into(),
                "tweights 3ff0000000000000 3ff0000000000000".into(),
                ok[3].into(),
            ],
            // wrong labels / garbage
            ["digest 1".into(), ok[1].into(), ok[2].into(), ok[3].into()],
            ["tdigest x".into(), ok[1].into(), ok[2].into(), ok[3].into()],
            [
                "tdigest 1".into(),
                "tmeans zz".into(),
                ok[2].into(),
                ok[3].into(),
            ],
            [
                "tdigest 1".into(),
                ok[1].into(),
                ok[2].into(),
                "trange 0".into(),
            ],
        ];
        for case in &cases {
            let as_refs = [
                case[0].as_str(),
                case[1].as_str(),
                case[2].as_str(),
                case[3].as_str(),
            ];
            assert!(TDigest::from_lines(as_refs).is_err(), "{case:?}");
        }
    }
}
