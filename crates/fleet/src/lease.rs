//! Lease-based slot ownership: the local state machine behind the
//! cluster's single-writer guarantee.
//!
//! A serving node's right to answer for a route slot is a **renewable
//! lease**: a deadline granted by the cluster coordinator and renewed
//! while the node is healthy. A node whose lease lapses — it was
//! partitioned, paused, or its coordinator re-homed the slot — must
//! refuse to serve the slot with a typed error rather than keep
//! answering from possibly re-homed state; the refusal is what closes
//! the dual-writer window during a migration that the crashed node
//! never heard about.
//!
//! The table is deliberately **opt-in**: until the first grant arrives
//! the node is not participating in lease-managed ownership and serves
//! every slot freely (the standalone and pre-lease cluster behaviour).
//! The first grant flips the table to enforcing, and from then on a
//! slot without an unexpired lease is refused. Time is passed in by the
//! caller ([`std::time::Instant`]) so expiry is directly testable.
//!
//! The table holds plain data behind no lock of its own; the serving
//! layer (`sofia-net`) wraps it in whatever synchronization its
//! request path needs.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Why a slot may (or may not) be served right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// The table is not enforcing (no lease was ever granted): every
    /// slot is served freely.
    Unmanaged,
    /// The slot's lease is held and unexpired.
    Active,
    /// The table is enforcing and the slot's lease lapsed (or was
    /// revoked, or never granted): the slot must be refused.
    Lapsed,
}

/// Per-slot ownership leases for one serving node.
#[derive(Debug, Default)]
pub struct LeaseTable {
    enforcing: bool,
    deadlines: BTreeMap<u64, Instant>,
}

impl LeaseTable {
    /// An empty, non-enforcing table (the standalone default).
    pub fn new() -> LeaseTable {
        LeaseTable::default()
    }

    /// Whether any lease was ever granted — once true, slots without an
    /// unexpired lease are refused.
    pub fn enforcing(&self) -> bool {
        self.enforcing
    }

    /// Grants (or renews) the lease on `slot` until `now + ttl`. The
    /// first grant flips the table to enforcing.
    pub fn grant(&mut self, slot: u64, ttl: Duration, now: Instant) {
        self.enforcing = true;
        self.deadlines.insert(slot, now + ttl);
    }

    /// Revokes `slot`'s lease immediately (the coordinator is about to
    /// re-home it); returns whether a lease existed. The table stays
    /// enforcing — a revoked slot is refused until re-granted.
    pub fn revoke(&mut self, slot: u64) -> bool {
        self.enforcing = true;
        self.deadlines.remove(&slot).is_some()
    }

    /// The slot's serving state at `now`.
    pub fn state(&self, slot: u64, now: Instant) -> LeaseState {
        if !self.enforcing {
            return LeaseState::Unmanaged;
        }
        match self.deadlines.get(&slot) {
            Some(&deadline) if now < deadline => LeaseState::Active,
            _ => LeaseState::Lapsed,
        }
    }

    /// Whether the node may serve `slot` at `now` — `Unmanaged` and
    /// `Active` serve, `Lapsed` refuses.
    pub fn permits(&self, slot: u64, now: Instant) -> bool {
        self.state(slot, now) != LeaseState::Lapsed
    }

    /// Slots with an unexpired lease at `now`, ascending.
    pub fn active_slots(&self, now: Instant) -> Vec<u64> {
        self.deadlines
            .iter()
            .filter(|(_, &d)| now < d)
            .map(|(&s, _)| s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmanaged_table_permits_everything() {
        let table = LeaseTable::new();
        let now = Instant::now();
        assert!(!table.enforcing());
        for slot in [0, 3, u64::MAX] {
            assert_eq!(table.state(slot, now), LeaseState::Unmanaged);
            assert!(table.permits(slot, now));
        }
    }

    #[test]
    fn first_grant_flips_to_enforcing_and_ungranted_slots_lapse() {
        let mut table = LeaseTable::new();
        let now = Instant::now();
        table.grant(2, Duration::from_secs(10), now);
        assert!(table.enforcing());
        assert_eq!(table.state(2, now), LeaseState::Active);
        assert!(table.permits(2, now));
        // Every other slot is now refused: enforcement is table-wide.
        assert_eq!(table.state(0, now), LeaseState::Lapsed);
        assert!(!table.permits(0, now));
        assert_eq!(table.active_slots(now), vec![2]);
    }

    #[test]
    fn leases_expire_at_their_deadline_and_renew() {
        let mut table = LeaseTable::new();
        let now = Instant::now();
        let ttl = Duration::from_millis(50);
        table.grant(1, ttl, now);
        assert!(table.permits(1, now + Duration::from_millis(49)));
        // The deadline itself is already lapsed (`now < deadline`).
        assert!(!table.permits(1, now + ttl));
        assert_eq!(table.state(1, now + ttl), LeaseState::Lapsed);
        // Renewal resurrects the slot from lapsed.
        table.grant(1, ttl, now + Duration::from_millis(100));
        assert!(table.permits(1, now + Duration::from_millis(149)));
    }

    #[test]
    fn revoke_refuses_immediately_until_regranted() {
        let mut table = LeaseTable::new();
        let now = Instant::now();
        table.grant(4, Duration::from_secs(60), now);
        assert!(table.revoke(4));
        assert!(!table.revoke(4), "second revoke finds nothing");
        assert!(!table.permits(4, now));
        table.grant(4, Duration::from_secs(60), now);
        assert!(table.permits(4, now));
    }

    #[test]
    fn revoke_on_a_fresh_table_starts_enforcement() {
        // A coordinator fencing a node it never granted to: the revoke
        // alone must stop the node serving that slot.
        let mut table = LeaseTable::new();
        let now = Instant::now();
        assert!(!table.revoke(9));
        assert!(table.enforcing());
        assert!(!table.permits(9, now));
    }
}
