//! Crash-recovery and lifecycle integration tests: fleets are killed
//! mid-stream and restored from their periodic checkpoints (or evicted
//! and lazily restored); every restored stream's subsequent
//! `StepOutput`s must be **bit-exact** against an uninterrupted run (the
//! checkpoint envelope guarantees byte-identical state, and shard
//! workers apply each stream's slices in order). Covered here:
//!
//! * all-SOFIA crash recovery (the original scenario);
//! * a **mixed** fleet — SOFIA plus the durable baselines SMF and
//!   OnlineSGD — recovered through the tagged v2 envelope;
//! * bare pre-envelope **v1** SOFIA files still loading;
//! * idle-stream **eviction** and lazy restore with correct queries.

// The comparison loops index control/streamed tables by (stream, step)
// on purpose; iterator rewrites would obscure the alignment being tested.
#![allow(clippy::needless_range_loop)]

use sofia_baselines::{OnlineSgd, Smf};
use sofia_core::config::SofiaConfig;
use sofia_core::traits::{StepOutput, StreamingFactorizer};
use sofia_core::Sofia;
use sofia_datagen::seasonal::SeasonalStream;
use sofia_datagen::stream::TensorStream;
use sofia_fleet::{CheckpointPolicy, Fleet, FleetConfig, ModelHandle, Query, StreamStats};
use sofia_tensor::{DenseTensor, Matrix, ObservedTensor};
use std::path::PathBuf;

/// Typed-plane shorthands: these tests assert recovery semantics, not
/// response matching, so unwrap the response variant once here.
fn latest(fleet: &Fleet, id: &str) -> Option<StepOutput> {
    fleet
        .query(id, Query::Latest)
        .expect("query")
        .wait()
        .expect("latest")
        .expect_latest()
}

fn forecast(fleet: &Fleet, id: &str, h: usize) -> Option<DenseTensor> {
    fleet
        .query(id, Query::Forecast { horizon: h })
        .expect("query")
        .wait()
        .expect("forecast")
        .expect_forecast()
}

fn stream_stats(fleet: &Fleet, id: &str) -> StreamStats {
    fleet
        .query(id, Query::StreamStats)
        .expect("query")
        .wait()
        .expect("stats")
        .expect_stream_stats()
}

const PERIOD: usize = 4;
const STREAMS: usize = 4;
/// Streaming steps ingested before the crash.
const PRE_CRASH: usize = 5;
/// Streaming steps replayed/continued after recovery.
const TOTAL: usize = 9;
/// Periodic checkpoint interval — deliberately *not* dividing PRE_CRASH,
/// so the crash loses the steps after the last checkpoint boundary and
/// recovery must replay them.
const EVERY: u64 = 2;

fn stream(i: usize) -> SeasonalStream {
    SeasonalStream::paper_fig2(&[4, 3], 2, PERIOD, 100 + i as u64)
}

fn config() -> SofiaConfig {
    SofiaConfig::new(2, PERIOD)
        .with_lambdas(0.01, 0.01, 10.0)
        .with_als_limits(1e-4, 2, 50)
}

/// Startup window plus the streamed slices of one synthetic stream.
fn slices(i: usize) -> (Vec<ObservedTensor>, Vec<ObservedTensor>) {
    let s = stream(i);
    let t0 = 3 * PERIOD;
    let startup = (0..t0)
        .map(|t| ObservedTensor::fully_observed(s.clean_slice(t)))
        .collect();
    let streamed = (t0..t0 + TOTAL)
        .map(|t| ObservedTensor::fully_observed(s.clean_slice(t)))
        .collect();
    (startup, streamed)
}

fn init_model(i: usize, startup: &[ObservedTensor]) -> Sofia {
    Sofia::init(&config(), startup, 7 + i as u64).expect("init")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sofia-fleet-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn crash_recovery_is_bit_exact() {
    let dir = tempdir("bit-exact");
    let fleet_config = || FleetConfig {
        shards: 2,
        queue_capacity: 64,
        checkpoint: Some(CheckpointPolicy::new(&dir, EVERY)),
        evict_idle_after: None,
    };

    // --- Uninterrupted control run: one Sofia per stream, stepped
    // serially over every slice; outputs recorded per (stream, step).
    let mut control_outputs: Vec<Vec<StepOutput>> = Vec::new();
    let mut streamed_slices: Vec<Vec<ObservedTensor>> = Vec::new();
    for i in 0..STREAMS {
        let (startup, streamed) = slices(i);
        let mut model = init_model(i, &startup);
        let outputs = streamed
            .iter()
            .map(|s| StreamingFactorizer::step(&mut model, s))
            .collect();
        control_outputs.push(outputs);
        streamed_slices.push(streamed);
    }

    // --- Fleet run up to the crash.
    let fleet = Fleet::new(fleet_config()).expect("fleet");
    let keys: Vec<_> = (0..STREAMS)
        .map(|i| {
            let (startup, _) = slices(i);
            fleet
                .register(
                    &format!("stream-{i}"),
                    ModelHandle::sofia(init_model(i, &startup)),
                )
                .expect("register")
        })
        .collect();
    for t in 0..PRE_CRASH {
        for (i, key) in keys.iter().enumerate() {
            fleet
                .try_ingest(key, streamed_slices[i][t].clone())
                .expect("ingest");
        }
    }
    fleet.flush().expect("flush");

    // Pre-crash sanity: the fleet's live outputs already match control.
    for i in 0..STREAMS {
        let last = latest(&fleet, &format!("stream-{i}")).expect("stepped");
        let expect = &control_outputs[i][PRE_CRASH - 1];
        assert_eq!(last.completed.data(), expect.completed.data());
    }

    // --- Crash: no drain, no final checkpoints. Only the periodic
    // checkpoints (latest at step 4 = floor(5/2)·2) survive on disk.
    fleet.abort();

    // --- Recovery.
    let (recovered, n) = Fleet::recover(fleet_config()).expect("recover");
    assert_eq!(n, STREAMS, "every stream restored");
    let mut resume_at = Vec::new();
    for i in 0..STREAMS {
        let id = format!("stream-{i}");
        let stats = stream_stats(&recovered, &id);
        // The crash happened EVERY-aligned checkpoints ago: state resumes
        // at the last boundary, not at the crash point…
        assert_eq!(
            stats.steps,
            (PRE_CRASH as u64 / EVERY) * EVERY,
            "restored step counter of {id}"
        );
        // …and the latest completed slice is not part of a checkpoint.
        assert!(latest(&recovered, &id).is_none());
        resume_at.push(stats.steps as usize);
    }

    // --- Replay the lost tail and continue past the crash point; every
    // output must be byte-identical to the uninterrupted run.
    for i in 0..STREAMS {
        let id = format!("stream-{i}");
        let key = recovered.key(&id).expect("registered");
        for t in resume_at[i]..TOTAL {
            recovered
                .try_ingest(&key, streamed_slices[i][t].clone())
                .expect("ingest");
            recovered.flush().expect("flush");
            let out = latest(&recovered, &id).expect("stepped");
            let expect = &control_outputs[i][t];
            assert_eq!(
                out.completed.data(),
                expect.completed.data(),
                "stream {i} step {t}: completed diverged after recovery"
            );
            let (got_o, want_o) = (&out.outliers, &expect.outliers);
            assert_eq!(got_o.is_some(), want_o.is_some());
            if let (Some(g), Some(w)) = (got_o, want_o) {
                assert_eq!(g.data(), w.data(), "stream {i} step {t}: outliers");
            }
        }
        // Forecasts from the recovered model match the control model too.
        let control_fc = {
            let (startup, _) = slices(i);
            let mut model = init_model(i, &startup);
            for s in &streamed_slices[i] {
                StreamingFactorizer::step(&mut model, s);
            }
            model.forecast_slice(3)
        };
        let fc = forecast(&recovered, &id, 3).expect("SOFIA forecasts");
        assert_eq!(fc.data(), control_fc.data(), "stream {i} forecast");
    }

    recovered.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_loses_nothing() {
    let dir = tempdir("graceful");
    let fleet_config = || FleetConfig {
        shards: 2,
        queue_capacity: 64,
        // Huge interval: only the shutdown checkpoint makes state durable.
        checkpoint: Some(CheckpointPolicy::new(&dir, 1_000_000)),
        evict_idle_after: None,
    };

    let fleet = Fleet::new(fleet_config()).expect("fleet");
    let (startup, streamed) = slices(0);
    // (The deprecated `register_sofia` alias is covered by the engine's
    // dedicated legacy-wrapper test; durability scenarios register
    // through the uniform handle constructors.)
    let key = fleet
        .register("solo", ModelHandle::sofia(init_model(0, &startup)))
        .expect("register");
    for s in streamed.iter().take(PRE_CRASH) {
        fleet.try_ingest(&key, s.clone()).expect("ingest");
    }
    fleet.flush().expect("flush");
    assert_eq!(fleet.shutdown().expect("shutdown"), 1);

    let (recovered, n) = Fleet::recover(fleet_config()).expect("recover");
    assert_eq!(n, 1);
    // Graceful shutdown checkpoints the *post-drain* state: nothing to
    // replay.
    assert_eq!(stream_stats(&recovered, "solo").steps, PRE_CRASH as u64);

    // Continuing from the shutdown checkpoint matches an uninterrupted
    // control run exactly.
    let key = recovered.key("solo").expect("registered");
    for s in streamed.iter().skip(PRE_CRASH) {
        recovered.try_ingest(&key, s.clone()).expect("ingest");
    }
    recovered.flush().expect("flush");
    let last = latest(&recovered, "solo").expect("stepped");
    let mut control = init_model(0, &startup);
    let mut want = None;
    for s in &streamed {
        want = Some(StreamingFactorizer::step(&mut control, s));
    }
    assert_eq!(
        last.completed.data(),
        want.unwrap().completed.data(),
        "post-shutdown continuation diverged"
    );

    recovered.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The model kinds a mixed fleet serves; `build(i)` must be
/// deterministic so the control and fleet instances start identical.
fn mixed_handle(kind: &str, i: usize, startup: &[ObservedTensor]) -> ModelHandle {
    match kind {
        "sofia" => ModelHandle::sofia(init_model(i, startup)),
        "smf" => ModelHandle::durable(Smf::init(startup, 2, PERIOD, 0.1, 7 + i as u64)),
        "online-sgd" => ModelHandle::durable(OnlineSgd::init(startup, 2, 0.1, 7 + i as u64)),
        other => panic!("unknown kind {other}"),
    }
}

fn mixed_control(kind: &str, i: usize, startup: &[ObservedTensor]) -> Box<dyn StreamingFactorizer> {
    match kind {
        "sofia" => Box::new(init_model(i, startup)),
        "smf" => Box::new(Smf::init(startup, 2, PERIOD, 0.1, 7 + i as u64)),
        "online-sgd" => Box::new(OnlineSgd::init(startup, 2, 0.1, 7 + i as u64)),
        other => panic!("unknown kind {other}"),
    }
}

/// The acceptance scenario: a fleet serving SOFIA **and** two baseline
/// model kinds survives `abort` + `recover` with every stream restored
/// bit-exactly through the tagged v2 envelope.
#[test]
fn mixed_model_crash_recovery_is_bit_exact() {
    let dir = tempdir("mixed");
    let fleet_config = || FleetConfig {
        shards: 2,
        queue_capacity: 64,
        checkpoint: Some(CheckpointPolicy::new(&dir, EVERY)),
        evict_idle_after: None,
    };
    let kinds = ["sofia", "smf", "online-sgd", "sofia", "online-sgd", "smf"];
    let expected_names = ["SOFIA", "SMF", "OnlineSGD", "SOFIA", "OnlineSGD", "SMF"];

    // Uninterrupted control run per stream.
    let mut controls: Vec<Box<dyn StreamingFactorizer>> = Vec::new();
    let mut control_outputs: Vec<Vec<StepOutput>> = Vec::new();
    let mut streamed_slices: Vec<Vec<ObservedTensor>> = Vec::new();
    for (i, kind) in kinds.iter().enumerate() {
        let (startup, streamed) = slices(i);
        let mut model = mixed_control(kind, i, &startup);
        let outputs = streamed.iter().map(|s| model.step(s)).collect();
        controls.push(model);
        control_outputs.push(outputs);
        streamed_slices.push(streamed);
    }

    // Fleet run up to the crash.
    let fleet = Fleet::new(fleet_config()).expect("fleet");
    let keys: Vec<_> = kinds
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            let (startup, _) = slices(i);
            fleet
                .register(&format!("mixed-{i}"), mixed_handle(kind, i, &startup))
                .expect("register")
        })
        .collect();
    for t in 0..PRE_CRASH {
        for (i, key) in keys.iter().enumerate() {
            fleet
                .try_ingest(key, streamed_slices[i][t].clone())
                .expect("ingest");
        }
    }
    fleet.flush().expect("flush");
    fleet.abort();

    // Recovery restores every stream, baselines included, with the right
    // model kind behind each id and the uniform step counter at the last
    // checkpoint boundary.
    let (recovered, n) = Fleet::recover(fleet_config()).expect("recover");
    assert_eq!(n, kinds.len(), "every stream restored");
    let boundary = (PRE_CRASH as u64 / EVERY) * EVERY;
    for (i, name) in expected_names.iter().enumerate() {
        let id = format!("mixed-{i}");
        let stats = stream_stats(&recovered, &id);
        assert_eq!(stats.model, *name, "model kind behind {id}");
        assert_eq!(stats.steps, boundary, "uniform step counter of {id}");
    }

    // Replay the lost tail and continue; byte-identical for every kind.
    for i in 0..kinds.len() {
        let id = format!("mixed-{i}");
        let key = recovered.key(&id).expect("registered");
        for t in boundary as usize..TOTAL {
            recovered
                .try_ingest(&key, streamed_slices[i][t].clone())
                .expect("ingest");
            recovered.flush().expect("flush");
            let out = latest(&recovered, &id).expect("stepped");
            let expect = &control_outputs[i][t];
            assert_eq!(
                out.completed.data(),
                expect.completed.data(),
                "{} step {t}: completed diverged after recovery",
                kinds[i]
            );
        }
        // Forecast-capable kinds agree with their control models too.
        let control_fc = controls[i].forecast(2);
        let fc = forecast(&recovered, &id, 2);
        match (control_fc, fc) {
            (Some(c), Some(f)) => assert_eq!(c.data(), f.data(), "{} forecast", kinds[i]),
            (None, None) => {} // OnlineSGD does not forecast
            (c, f) => panic!(
                "{}: forecast capability diverged: control {:?} vs fleet {:?}",
                kinds[i],
                c.is_some(),
                f.is_some()
            ),
        }
    }

    recovered.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoints written before the envelope existed (bare v1 SOFIA text)
/// must keep loading bit-exactly, and a later save upgrades them to v2.
#[test]
fn bare_v1_sofia_checkpoint_still_loads() {
    let dir = tempdir("v1-compat");
    std::fs::create_dir_all(&dir).unwrap();
    let (startup, streamed) = slices(0);
    let mut control = init_model(0, &startup);
    for s in streamed.iter().take(3) {
        StreamingFactorizer::step(&mut control, s);
    }
    // Write exactly what the pre-envelope engine wrote: bare v1 text.
    let v1_text = sofia_core::checkpoint::save(&control);
    assert!(v1_text.starts_with("sofia-checkpoint v1\n"));
    sofia_fleet::durability::write_checkpoint(&dir, "legacy/stream", &v1_text).unwrap();

    let fleet_config = || FleetConfig {
        shards: 1,
        queue_capacity: 16,
        checkpoint: Some(CheckpointPolicy::new(&dir, 1_000_000)),
        evict_idle_after: None,
    };
    let (recovered, n) = Fleet::recover(fleet_config()).expect("recover");
    assert_eq!(n, 1);
    let stats = stream_stats(&recovered, "legacy/stream");
    assert_eq!(stats.model, "SOFIA");
    assert_eq!(stats.steps, 3, "v1 steps trailer seeds the counter");

    // Continue past the v1 state: bit-exact against the control model.
    let key = recovered.key("legacy/stream").expect("registered");
    for s in streamed.iter().skip(3) {
        recovered.try_ingest(&key, s.clone()).expect("ingest");
        recovered.flush().expect("flush");
        let out = latest(&recovered, "legacy/stream").expect("stepped");
        let expect = StreamingFactorizer::step(&mut control, s);
        assert_eq!(out.completed.data(), expect.completed.data());
    }

    // Graceful shutdown rewrites the stream as a v2 envelope…
    assert_eq!(recovered.shutdown().expect("shutdown"), 1);
    let path = sofia_fleet::durability::checkpoint_path(&dir, "legacy/stream");
    let upgraded = std::fs::read_to_string(path).unwrap();
    assert!(upgraded.starts_with("sofia-checkpoint v2\nmodel sofia\n"));
    // …which recovers just as well.
    let (again, n) = Fleet::recover(fleet_config()).expect("recover v2");
    assert_eq!(n, 1);
    assert_eq!(stream_stats(&again, "legacy/stream").steps, TOTAL as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The lifecycle acceptance scenario: an idle snapshot-capable stream is
/// checkpointed and unloaded (LRU by last-ingest step), then lazily
/// restored by the next query/ingest with bit-exact state.
#[test]
fn idle_stream_evicts_and_lazily_restores() {
    let dir = tempdir("evict");
    let fleet = Fleet::new(FleetConfig {
        shards: 1,
        queue_capacity: 64,
        // Huge periodic interval: any checkpoint on disk comes from the
        // eviction path itself.
        checkpoint: Some(CheckpointPolicy::new(&dir, 1_000_000)),
        evict_idle_after: Some(4),
    })
    .expect("fleet");

    // Two tiny durable models on the one shard; deterministic factors so
    // the control instance starts identical.
    let sgd = |seed: u64| {
        let f = |s: u64| Matrix::from_fn(3, 2, |i, j| 0.5 + (i + 2 * j + s as usize) as f64 * 0.1);
        OnlineSgd::new(vec![f(seed), f(seed + 1)], 0.1)
    };
    let slice = |v: f64| {
        ObservedTensor::fully_observed(sofia_tensor::DenseTensor::from_fn(
            sofia_tensor::Shape::new(&[3, 3]),
            |idx| v + idx[0] as f64 - 0.3 * idx[1] as f64,
        ))
    };
    let mut control = sgd(1);
    let idle = fleet
        .register("idle", ModelHandle::durable(sgd(1)))
        .unwrap();
    let busy = fleet
        .register("busy", ModelHandle::durable(sgd(9)))
        .unwrap();

    // Step the soon-idle stream twice, mirrored on the control model.
    for t in 0..2 {
        fleet.try_ingest(&idle, slice(t as f64)).unwrap();
    }
    fleet.flush().unwrap();
    let mut control_last = None;
    for t in 0..2 {
        control_last = Some(control.step(&slice(t as f64)));
    }
    // Pre-eviction parity: the served stream already matches control.
    let live = latest(&fleet, "idle").expect("stepped");
    assert_eq!(
        live.completed.data(),
        control_last.expect("stepped").completed.data(),
        "pre-eviction output should match control"
    );
    let stats = fleet.fleet_stats().unwrap();
    assert_eq!(stats.evictions(), 0, "not idle yet");
    assert_eq!(stats.streams(), 2);

    // Drive only the busy stream: the shard's step clock advances past
    // the idle threshold and the sweep evicts `idle`.
    for t in 0..6 {
        fleet.try_ingest(&busy, slice(t as f64)).unwrap();
    }
    fleet.flush().unwrap();
    let stats = fleet.fleet_stats().unwrap();
    assert_eq!(stats.evictions(), 1, "idle stream evicted");
    assert_eq!(stats.evicted(), 1);
    assert_eq!(stats.streams(), 1, "only busy resident");
    assert_eq!(stats.restores(), 0);
    // The registry still knows the stream — it is unloaded, not gone.
    assert_eq!(fleet.streams(), 2);
    assert!(sofia_fleet::durability::checkpoint_path(&dir, "idle").exists());

    // A query lazily restores it: stats come back with the pre-eviction
    // step counter, and `latest` resets exactly like crash recovery.
    let stats = stream_stats(&fleet, "idle");
    assert_eq!(stats.steps, 2);
    assert_eq!(stats.model, "OnlineSGD");
    let fstats = fleet.fleet_stats().unwrap();
    assert_eq!(fstats.restores(), 1, "query triggered the lazy restore");
    assert_eq!(fstats.evicted(), 0);
    assert_eq!(fstats.streams(), 2);
    assert!(latest(&fleet, "idle").is_none());

    // Post-restore serving is bit-exact against the uninterrupted
    // control model (last output aside, state round-tripped exactly).
    fleet.try_ingest(&idle, slice(7.5)).unwrap();
    fleet.flush().unwrap();
    let out = latest(&fleet, "idle").expect("stepped");
    let expect = control.step(&slice(7.5));
    assert_eq!(
        out.completed.data(),
        expect.completed.data(),
        "restored stream diverged from control"
    );
    assert_eq!(stream_stats(&fleet, "idle").steps, 3);

    fleet.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
