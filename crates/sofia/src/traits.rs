//! The streaming-factorizer interface shared by SOFIA and every baseline.

use sofia_tensor::{DenseTensor, ObservedTensor};

/// Output of processing one streaming subtensor.
#[derive(Debug, Clone)]
pub struct StepOutput {
    /// The completed (imputed) reconstruction `X̂_t` — dense, covering both
    /// observed and missing positions.
    pub completed: DenseTensor,
    /// The estimated outlier subtensor `O_t` if the method models outliers
    /// (dense, zero at inlier positions); `None` for non-robust methods.
    pub outliers: Option<DenseTensor>,
}

/// A streaming tensor factorization/completion algorithm.
///
/// The protocol mirrors the paper's experimental setup: the algorithm is
/// constructed and (optionally) warm-started on a start-up window, then
/// receives one partially observed subtensor per time step and must return
/// its completed reconstruction before seeing the next one.
///
/// The trait is deliberately **object-safe** and carries no `Send` bound:
/// serving layers (see `sofia-fleet`) box implementations as
/// `Box<dyn StreamingFactorizer + Send>` and move them onto shard worker
/// threads, while single-threaded analysis code is free to implement it
/// on non-`Send` types. Every model in this workspace is plain owned data
/// (`Vec<f64>`-backed tensors and scalars), so all of them are `Send`;
/// compile-time assertions below and in `sofia-baselines` pin that down.
pub trait StreamingFactorizer {
    /// Human-readable method name (used in reports and figures).
    fn name(&self) -> &'static str;

    /// Processes the subtensor at the next time step and returns the
    /// completed reconstruction.
    fn step(&mut self, slice: &ObservedTensor) -> StepOutput;

    /// Forecasts the subtensor `h` steps past the last processed one, if
    /// the method supports forecasting.
    fn forecast(&self, _h: usize) -> Option<DenseTensor> {
        None
    }
}

// Compile-time audit for the serving layer: the trait must stay
// object-safe, `Send`-boxable, and SOFIA itself must be `Send` (models
// are moved onto shard worker threads).
const _: fn() = || {
    fn assert_send<T: Send + ?Sized>() {}
    fn assert_object_safe(_: &dyn StreamingFactorizer) {}
    assert_send::<crate::model::Sofia>();
    assert_send::<Box<dyn StreamingFactorizer + Send>>();
    let _ = assert_object_safe;
};
