//! Additive Holt-Winters model (paper §III-C, Eqs. (5) and (6)).

/// Smoothing parameters `(α, β, γ)` of the additive Holt-Winters model,
/// each constrained to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwParams {
    /// Level smoothing parameter `α`.
    pub alpha: f64,
    /// Trend smoothing parameter `β`.
    pub beta: f64,
    /// Seasonal smoothing parameter `γ`.
    pub gamma: f64,
}

impl HwParams {
    /// Creates parameters, validating the `[0,1]` box constraints.
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha out of [0,1]: {alpha}");
        assert!((0.0..=1.0).contains(&beta), "beta out of [0,1]: {beta}");
        assert!((0.0..=1.0).contains(&gamma), "gamma out of [0,1]: {gamma}");
        Self { alpha, beta, gamma }
    }

    /// Clamps arbitrary values into the `[0,1]` box (used by the
    /// optimizer's projection step).
    pub fn clamped(alpha: f64, beta: f64, gamma: f64) -> Self {
        Self {
            alpha: alpha.clamp(0.0, 1.0),
            beta: beta.clamp(0.0, 1.0),
            gamma: gamma.clamp(0.0, 1.0),
        }
    }
}

impl Default for HwParams {
    /// Mild defaults commonly used as optimization starting points.
    fn default() -> Self {
        Self {
            alpha: 0.3,
            beta: 0.1,
            gamma: 0.1,
        }
    }
}

/// The state of a Holt-Winters model after observing some prefix of a
/// series: current level `l_t`, trend `b_t`, and the last `m` seasonal
/// components `s_{t-m+1}, …, s_t`.
#[derive(Debug, Clone, PartialEq)]
pub struct HwState {
    /// Current level `l_t`.
    pub level: f64,
    /// Current trend `b_t`.
    pub trend: f64,
    /// Ring buffer of the last `m` seasonal components; `seasonal[phase]`
    /// holds the most recent seasonal estimate for that phase of the cycle.
    pub seasonal: Vec<f64>,
    /// Phase of the *next* observation within the seasonal cycle.
    pub phase: usize,
}

impl HwState {
    /// Creates a state from initial components. `seasonal[p]` must hold the
    /// seasonal component for phase `p`, with `phase` pointing at the phase
    /// of the next observation.
    pub fn new(level: f64, trend: f64, seasonal: Vec<f64>, phase: usize) -> Self {
        assert!(!seasonal.is_empty(), "seasonal period must be positive");
        assert!(phase < seasonal.len(), "phase out of range");
        Self {
            level,
            trend,
            seasonal,
            phase,
        }
    }

    /// Seasonal period `m`.
    pub fn period(&self) -> usize {
        self.seasonal.len()
    }
}

/// Additive Holt-Winters model: parameters plus evolving state.
///
/// Observations are fed one at a time with [`HoltWinters::update`]; the
/// smoothing recursions (5a)-(5c) are applied with the *previous-season*
/// seasonal component, matching the paper exactly:
///
/// ```text
/// l_t = α (y_t − s_{t−m}) + (1 − α)(l_{t−1} + b_{t−1})
/// b_t = β (l_t − l_{t−1}) + (1 − β) b_{t−1}
/// s_t = γ (y_t − l_{t−1} − b_{t−1}) + (1 − γ) s_{t−m}
/// ```
///
/// ```
/// use sofia_timeseries::holt_winters::{HoltWinters, HwParams, HwState};
///
/// // Exact level/trend state: forecasts extrapolate linearly.
/// let state = HwState::new(10.0, 2.0, vec![0.0; 4], 0);
/// let mut hw = HoltWinters::new(HwParams::new(0.3, 0.1, 0.1), state);
/// assert_eq!(hw.forecast(3), 16.0);
/// let err = hw.update(12.0); // observation matches the forecast
/// assert!(err.abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HoltWinters {
    params: HwParams,
    state: HwState,
}

impl HoltWinters {
    /// Builds a model from parameters and an initial state.
    pub fn new(params: HwParams, state: HwState) -> Self {
        Self { params, state }
    }

    /// The smoothing parameters.
    pub fn params(&self) -> &HwParams {
        &self.params
    }

    /// The current state.
    pub fn state(&self) -> &HwState {
        &self.state
    }

    /// Seasonal period `m`.
    pub fn period(&self) -> usize {
        self.state.period()
    }

    /// One-step-ahead forecast `ŷ_{t+1|t} = l_t + b_t + s_{t+1−m}`
    /// (Eq. (6) with `h = 1`).
    pub fn forecast_one(&self) -> f64 {
        self.state.level + self.state.trend + self.state.seasonal[self.state.phase]
    }

    /// h-step-ahead forecast (Eq. (6)):
    /// `ŷ_{t+h|t} = l_t + h·b_t + s_{t+h−m(⌊(h−1)/m⌋+1)}`.
    ///
    /// # Panics
    /// Panics if `h == 0`.
    pub fn forecast(&self, h: usize) -> f64 {
        assert!(h >= 1, "forecast horizon must be at least 1");
        let m = self.period();
        let seasonal = self.state.seasonal[(self.state.phase + h - 1) % m];
        self.state.level + h as f64 * self.state.trend + seasonal
    }

    /// Observes `y_t` and applies the smoothing recursions (5a)-(5c).
    /// Returns the one-step-ahead forecast error `e_t = y_t − ŷ_{t|t−1}`.
    pub fn update(&mut self, y: f64) -> f64 {
        let HwParams { alpha, beta, gamma } = self.params;
        let m = self.period();
        let prev_level = self.state.level;
        let prev_trend = self.state.trend;
        let s_prev = self.state.seasonal[self.state.phase]; // s_{t-m} for this phase
        let error = y - (prev_level + prev_trend + s_prev);

        let level = alpha * (y - s_prev) + (1.0 - alpha) * (prev_level + prev_trend);
        let trend = beta * (level - prev_level) + (1.0 - beta) * prev_trend;
        let seasonal = gamma * (y - prev_level - prev_trend) + (1.0 - gamma) * s_prev;

        self.state.level = level;
        self.state.trend = trend;
        self.state.seasonal[self.state.phase] = seasonal;
        self.state.phase = (self.state.phase + 1) % m;
        error
    }

    /// Advances the model over a *missing* observation: the smoothing
    /// recursions are fed the model's own one-step-ahead forecast, which
    /// leaves level/trend/seasonal estimates unchanged up to the phase
    /// advance — the standard gap-handling convention for exponential
    /// smoothing. (This is what lets SOFIA-style pipelines keep a HW model
    /// aligned across blackout periods; plain HW "cannot be used if time
    /// series have missing values" per the paper's §II.)
    pub fn update_missing(&mut self) {
        let forecast = self.forecast_one();
        self.update(forecast);
    }

    /// Runs the recursions over a whole series, returning the one-step-ahead
    /// errors `e_t` for each observation.
    pub fn run(&mut self, series: &[f64]) -> Vec<f64> {
        series.iter().map(|&y| self.update(y)).collect()
    }

    /// Runs the recursions over a series with gaps (`None` = missing),
    /// returning the errors of the observed steps (`None` for gaps).
    pub fn run_with_gaps(&mut self, series: &[Option<f64>]) -> Vec<Option<f64>> {
        series
            .iter()
            .map(|y| match y {
                Some(v) => Some(self.update(*v)),
                None => {
                    self.update_missing();
                    None
                }
            })
            .collect()
    }

    /// Sum of squared one-step-ahead errors over a series, without
    /// mutating `self` (the SSE objective of §III-C used for fitting).
    pub fn sse(&self, series: &[f64]) -> f64 {
        let mut model = self.clone();
        series
            .iter()
            .map(|&y| {
                let e = model.update(y);
                e * e
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_state(m: usize) -> HwState {
        HwState::new(0.0, 0.0, vec![0.0; m], 0)
    }

    #[test]
    fn params_validation() {
        let p = HwParams::new(0.5, 0.0, 1.0);
        assert_eq!(p.alpha, 0.5);
        let c = HwParams::clamped(-3.0, 0.5, 7.0);
        assert_eq!(c.alpha, 0.0);
        assert_eq!(c.gamma, 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha out of")]
    fn params_reject_out_of_box() {
        HwParams::new(1.5, 0.0, 0.0);
    }

    #[test]
    fn update_matches_hand_computed_recursion() {
        // One observation, traced by hand.
        // l0=10, b0=1, s=[2,-2] (phase 0), α=0.5, β=0.4, γ=0.3, y=14.
        let params = HwParams::new(0.5, 0.4, 0.3);
        let state = HwState::new(10.0, 1.0, vec![2.0, -2.0], 0);
        let mut hw = HoltWinters::new(params, state);
        // forecast = 10 + 1 + 2 = 13; e = 1.
        assert!((hw.forecast_one() - 13.0).abs() < 1e-12);
        let e = hw.update(14.0);
        assert!((e - 1.0).abs() < 1e-12);
        // l1 = 0.5*(14-2) + 0.5*(11) = 6 + 5.5 = 11.5
        assert!((hw.state().level - 11.5).abs() < 1e-12);
        // b1 = 0.4*(11.5-10) + 0.6*1 = 0.6 + 0.6 = 1.2
        assert!((hw.state().trend - 1.2).abs() < 1e-12);
        // s(phase0) = 0.3*(14-10-1) + 0.7*2 = 0.9 + 1.4 = 2.3
        assert!((hw.state().seasonal[0] - 2.3).abs() < 1e-12);
        assert_eq!(hw.state().phase, 1);
    }

    #[test]
    fn perfect_linear_trend_gives_zero_error() {
        // y_t = 5 + 2t with zero seasonality: exact state ⇒ zero errors
        // regardless of parameters.
        let params = HwParams::new(0.4, 0.2, 0.1);
        let state = HwState::new(5.0, 2.0, vec![0.0; 3], 0);
        let mut hw = HoltWinters::new(params, state);
        for t in 1..=20 {
            let y = 5.0 + 2.0 * t as f64;
            let e = hw.update(y);
            assert!(e.abs() < 1e-9, "t={t}, e={e}");
        }
    }

    #[test]
    fn perfect_seasonal_series_gives_zero_error() {
        // y_t = s_{t mod m} with exact initial state.
        let season = [3.0, -1.0, -2.0, 0.0];
        let params = HwParams::new(0.3, 0.1, 0.2);
        let state = HwState::new(0.0, 0.0, season.to_vec(), 0);
        let mut hw = HoltWinters::new(params, state);
        for t in 0..24 {
            let e = hw.update(season[t % 4]);
            assert!(e.abs() < 1e-9);
        }
    }

    #[test]
    fn forecast_h_steps_linear_plus_season() {
        let season = vec![1.0, -1.0];
        let state = HwState::new(10.0, 0.5, season, 0);
        let hw = HoltWinters::new(HwParams::default(), state);
        // h=1: 10 + 0.5 + s[0] = 11.5 ; h=2: 10 + 1 + s[1] = 10.0
        assert!((hw.forecast(1) - 11.5).abs() < 1e-12);
        assert!((hw.forecast(2) - 10.0).abs() < 1e-12);
        // h=3 wraps to phase 0: 10 + 1.5 + 1 = 12.5
        assert!((hw.forecast(3) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn forecast_one_equals_forecast_h1() {
        let state = HwState::new(3.0, -0.2, vec![0.5, 0.1, -0.6], 2);
        let hw = HoltWinters::new(HwParams::default(), state);
        assert_eq!(hw.forecast_one(), hw.forecast(1));
    }

    #[test]
    fn sse_does_not_mutate() {
        let hw = HoltWinters::new(HwParams::default(), flat_state(4));
        let series: Vec<f64> = (0..12).map(|t| t as f64).collect();
        let before = hw.clone();
        let _ = hw.sse(&series);
        assert_eq!(hw, before);
    }

    #[test]
    fn run_returns_per_step_errors() {
        let mut hw = HoltWinters::new(HwParams::default(), flat_state(2));
        let errs = hw.run(&[1.0, 2.0, 3.0]);
        assert_eq!(errs.len(), 3);
        assert!((errs[0] - 1.0).abs() < 1e-12); // forecast was 0
    }

    #[test]
    fn alpha_one_tracks_level_exactly() {
        // With α=1, β=0, γ=0 and zero season/trend: level = y each step.
        let params = HwParams::new(1.0, 0.0, 0.0);
        let mut hw = HoltWinters::new(params, flat_state(3));
        hw.update(7.0);
        assert!((hw.state().level - 7.0).abs() < 1e-12);
        hw.update(-2.0);
        assert!((hw.state().level - (-2.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn forecast_zero_horizon_panics() {
        let hw = HoltWinters::new(HwParams::default(), flat_state(2));
        hw.forecast(0);
    }

    #[test]
    fn update_missing_preserves_level_and_trend() {
        let params = HwParams::new(0.4, 0.3, 0.2);
        let state = HwState::new(7.0, 0.5, vec![1.0, -1.0, 0.0], 0);
        let mut hw = HoltWinters::new(params, state);
        let before_level = hw.state().level;
        let before_trend = hw.state().trend;
        hw.update_missing();
        // Feeding the forecast leaves e_t = 0, so level moves exactly one
        // trend step and the trend is unchanged.
        assert!((hw.state().level - (before_level + before_trend)).abs() < 1e-12);
        assert!((hw.state().trend - before_trend).abs() < 1e-12);
        assert_eq!(hw.state().phase, 1);
    }

    #[test]
    fn run_with_gaps_survives_blackouts() {
        // Seasonal series with a full-season blackout: the model should
        // still forecast the pattern afterwards.
        let pattern = [4.0, -2.0, -2.0, 0.0];
        let params = HwParams::new(0.3, 0.05, 0.1);
        let state = HwState::new(0.0, 0.0, pattern.to_vec(), 0);
        let mut hw = HoltWinters::new(params, state);
        let series: Vec<Option<f64>> = (0..24)
            .map(|t| {
                if (8..12).contains(&t) {
                    None
                } else {
                    Some(pattern[t % 4])
                }
            })
            .collect();
        let errs = hw.run_with_gaps(&series);
        assert_eq!(errs.iter().filter(|e| e.is_none()).count(), 4);
        // Post-blackout forecasts still match the pattern.
        for h in 1..=4 {
            let truth = pattern[(24 + h - 1) % 4];
            assert!(
                (hw.forecast(h) - truth).abs() < 0.2,
                "h={h}: {} vs {truth}",
                hw.forecast(h)
            );
        }
    }
}
