//! `bench --compare`: gate a fresh benchmark run against committed
//! baselines (`BENCH_fleet.json` / `BENCH_net.json`), so CI fails on a
//! perf regression instead of relying on someone eyeballing numbers.
//!
//! The gate is **direction-aware**: a throughput metric must not fall
//! more than the gate percentage below baseline, a latency metric must
//! not rise more than that above it. Movement in the *good* direction
//! never fails the build — it is reported, as a hint to re-baseline.
//! Wall-clock metrics on shared CI hardware are noisy; the default
//! ±20% gate is deliberately wide enough to catch real regressions
//! (an accidental allocation on the per-request path, a lost fast
//! path) without tripping on scheduler jitter.
//!
//! The baseline argument is a single report file or a directory
//! holding both; reports are matched to the fresh run by their
//! `"bench"` key, and baseline metrics the fresh run did not produce
//! (e.g. a `--conns` level that was not re-run) are skipped, not
//! failed — absent fields are tolerated exactly like the wire parsers
//! tolerate absent blocks.

use std::path::Path;

/// A parsed JSON value — the minimal tree this crate needs to read its
/// own benchmark reports back. No serde in the workspace, and the
/// reports are machine-written, so a small total parser is enough; it
/// still rejects malformed input with a typed message rather than
/// guessing (a truncated baseline should fail the gate loudly).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Walks an object path (`["ingest", "slices_per_sec"]`).
    pub(crate) fn get(&self, path: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for key in path {
            let Json::Obj(fields) = cur else { return None };
            cur = &fields.iter().find(|(k, _)| k == key)?.1;
        }
        Some(cur)
    }

    /// The value as a finite number (`null` and non-numbers are `None`).
    pub(crate) fn num(&self) -> Option<f64> {
        match self {
            Json::Num(v) if v.is_finite() => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document (object, array, or scalar).
pub(crate) fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing JSON content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {pos} of baseline JSON",
            byte as char
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of baseline JSON".to_string()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad JSON keyword at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse()
        .map(Json::Num)
        .map_err(|_| format!("bad JSON number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated JSON string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                // The benchmark reports only ever escape these; anything
                // fancier (\uXXXX) is out of scope for reading them back.
                let escaped = match bytes.get(*pos) {
                    Some(b'"') => '"',
                    Some(b'\\') => '\\',
                    Some(b'/') => '/',
                    Some(b'n') => '\n',
                    Some(b't') => '\t',
                    Some(b'r') => '\r',
                    other => return Err(format!("unsupported JSON escape {other:?}")),
                };
                out.push(escaped);
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "non-UTF-8 baseline".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

/// Which way a metric is allowed to move.
#[derive(Clone, Copy)]
enum Better {
    /// Throughput-like: falling below baseline is the regression.
    Higher,
    /// Latency-like: rising above baseline is the regression.
    Lower,
}

/// One gated metric: a path into both reports plus its direction.
struct GatedMetric {
    path: &'static [&'static str],
    better: Better,
}

const FLEET_GATES: &[GatedMetric] = &[
    GatedMetric {
        path: &["ingest", "slices_per_sec"],
        better: Better::Higher,
    },
    GatedMetric {
        path: &["query", "single_us"],
        better: Better::Lower,
    },
    GatedMetric {
        path: &["query", "batched_per_item_us"],
        better: Better::Lower,
    },
];

const NET_GATES: &[GatedMetric] = &[
    GatedMetric {
        path: &["ingest", "slices_per_sec"],
        better: Better::Higher,
    },
    GatedMetric {
        path: &["round_trip", "query_us"],
        better: Better::Lower,
    },
    GatedMetric {
        path: &["round_trip", "stats_us"],
        better: Better::Lower,
    },
];

/// Compares one metric, printing a verdict line; `true` = regression.
fn check(
    name: &str,
    path_text: &str,
    base: f64,
    fresh: f64,
    better: Better,
    gate_pct: f64,
) -> bool {
    if base == 0.0 {
        println!("bench[compare]: {name} {path_text}: baseline is 0, skipped");
        return false;
    }
    let delta_pct = (fresh - base) / base * 100.0;
    let regressed = match better {
        Better::Higher => delta_pct < -gate_pct,
        Better::Lower => delta_pct > gate_pct,
    };
    let improved = match better {
        Better::Higher => delta_pct > gate_pct,
        Better::Lower => delta_pct < -gate_pct,
    };
    let verdict = if regressed {
        format!("REGRESSION (gate ±{gate_pct:.0}%)")
    } else if improved {
        "ok (improved past the gate — consider re-baselining)".to_string()
    } else {
        "ok".to_string()
    };
    println!(
        "bench[compare]: {name} {path_text}: {base:.3} -> {fresh:.3} ({delta_pct:+.1}%) {verdict}"
    );
    regressed
}

/// Diffs the gated metrics of one fresh report against its baseline.
/// Returns the number of regressions past the gate. Metrics absent on
/// either side (older baseline, trimmed fresh run) are skipped.
fn compare_report(name: &str, base: &Json, fresh: &Json, gate_pct: f64) -> usize {
    let gates = if name == "fleet" {
        FLEET_GATES
    } else {
        NET_GATES
    };
    let mut regressions = 0usize;
    for gate in gates {
        let (Some(b), Some(f)) = (
            base.get(gate.path).and_then(Json::num),
            fresh.get(gate.path).and_then(Json::num),
        ) else {
            continue;
        };
        if check(name, &gate.path.join("."), b, f, gate.better, gate_pct) {
            regressions += 1;
        }
    }
    // The concurrency levels live in an array keyed by connection
    // count; match levels across the two reports and gate the p50
    // (the 1-conn level is the steady-state round-trip the
    // zero-allocation request path is accountable to).
    if let (Some(Json::Arr(base_levels)), Some(Json::Arr(fresh_levels))) = (
        base.get(&["concurrency", "levels"]),
        fresh.get(&["concurrency", "levels"]),
    ) {
        for bl in base_levels {
            let Some(conns) = bl.get(&["connections"]).and_then(Json::num) else {
                continue;
            };
            let Some(fl) = fresh_levels
                .iter()
                .find(|l| l.get(&["connections"]).and_then(Json::num) == Some(conns))
            else {
                println!(
                    "bench[compare]: {name} concurrency level {conns} \
                     not in the fresh run, skipped"
                );
                continue;
            };
            let path = ["per_query_us", "p50"];
            if let (Some(b), Some(f)) = (
                bl.get(&path).and_then(Json::num),
                fl.get(&path).and_then(Json::num),
            ) {
                let text = format!("concurrency[{conns}].per_query_us.p50");
                if check(name, &text, b, f, Better::Lower, gate_pct) {
                    regressions += 1;
                }
            }
        }
    }
    regressions
}

/// Entry point: gates fresh report bodies against `baseline` (a report
/// file, or a directory holding `BENCH_fleet.json` / `BENCH_net.json`).
/// Errors — which exit the CLI nonzero — on any regression past the
/// gate, on an unreadable or unmatched baseline, and on a malformed
/// report.
pub fn compare(
    fresh_fleet: &str,
    fresh_net: &str,
    baseline: &Path,
    gate_pct: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    if !(gate_pct.is_finite() && gate_pct > 0.0) {
        return Err("--gate-pct must be a positive percentage".into());
    }
    let fresh_fleet = parse_json(fresh_fleet)?;
    let fresh_net = parse_json(fresh_net)?;
    let baseline_files: Vec<std::path::PathBuf> = if baseline.is_dir() {
        let files: Vec<_> = ["BENCH_fleet.json", "BENCH_net.json"]
            .iter()
            .map(|f| baseline.join(f))
            .filter(|p| p.is_file())
            .collect();
        if files.is_empty() {
            return Err(format!(
                "no BENCH_fleet.json / BENCH_net.json under {}",
                baseline.display()
            )
            .into());
        }
        files
    } else {
        vec![baseline.to_path_buf()]
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for path in &baseline_files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let base = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let fresh = match base.get(&["bench"]).and_then(Json::str) {
            Some("fleet") => ("fleet", &fresh_fleet),
            Some("net") => ("net", &fresh_net),
            other => {
                return Err(format!(
                    "{}: unrecognized bench kind {other:?} (expected \"fleet\" or \"net\")",
                    path.display()
                )
                .into())
            }
        };
        compared += 1;
        regressions += compare_report(fresh.0, &base, fresh.1, gate_pct);
    }
    if regressions > 0 {
        return Err(format!(
            "{regressions} metric(s) regressed past the ±{gate_pct:.0}% gate \
             (re-baseline with `bench --json` if the change is intended)"
        )
        .into());
    }
    println!("bench[compare]: {compared} baseline report(s), no regression past ±{gate_pct:.0}%");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_committed_style_report() {
        let doc = r#"{
  "bench": "net",
  "seed": 2021,
  "nested": { "arr": [1, 2.5, null, "x"], "neg": -3.25e1 },
  "flag": true
}"#;
        let v = parse_json(doc).expect("parse");
        assert_eq!(v.get(&["bench"]).and_then(Json::str), Some("net"));
        assert_eq!(v.get(&["seed"]).and_then(Json::num), Some(2021.0));
        assert_eq!(v.get(&["nested", "neg"]).and_then(Json::num), Some(-32.5));
        let Some(Json::Arr(items)) = v.get(&["nested", "arr"]) else {
            panic!("array");
        };
        assert_eq!(items.len(), 4);
        assert_eq!(items[2], Json::Null);
        assert_eq!(v.get(&["flag"]), Some(&Json::Bool(true)));
        assert_eq!(v.get(&["missing"]), None);
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1 2]",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
        ] {
            assert!(parse_json(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn gate_is_direction_aware() {
        // Throughput falling 30% regresses; rising 30% does not.
        assert!(check("t", "x", 100.0, 70.0, Better::Higher, 20.0));
        assert!(!check("t", "x", 100.0, 130.0, Better::Higher, 20.0));
        // Latency rising 30% regresses; falling 30% does not.
        assert!(check("t", "x", 100.0, 130.0, Better::Lower, 20.0));
        assert!(!check("t", "x", 100.0, 70.0, Better::Lower, 20.0));
        // Inside the gate either way: fine.
        assert!(!check("t", "x", 100.0, 85.0, Better::Higher, 20.0));
        assert!(!check("t", "x", 100.0, 115.0, Better::Lower, 20.0));
    }

    #[test]
    fn compare_report_matches_concurrency_levels_by_connection_count() {
        let base = parse_json(
            r#"{ "bench": "net",
                 "ingest": { "slices_per_sec": 1000.0 },
                 "round_trip": { "query_us": 30.0, "stats_us": 90.0 },
                 "concurrency": { "levels": [
                    { "connections": 1, "per_query_us": { "p50": 10.0 } },
                    { "connections": 64, "per_query_us": { "p50": 400.0 } }
                 ] } }"#,
        )
        .expect("base");
        // Fresh run only re-ran the 1-conn level, 3x slower: exactly one
        // regression; the missing 64-conn level is skipped, not failed.
        let fresh = parse_json(
            r#"{ "bench": "net",
                 "ingest": { "slices_per_sec": 990.0 },
                 "round_trip": { "query_us": 31.0, "stats_us": 80.0 },
                 "concurrency": { "levels": [
                    { "connections": 1, "per_query_us": { "p50": 30.0 } }
                 ] } }"#,
        )
        .expect("fresh");
        assert_eq!(compare_report("net", &base, &fresh, 20.0), 1);
    }
}
