//! Holt-Winters modelling of the temporal factor matrix (paper §V-B).
//!
//! Each column `ũ⁽ᴺ⁾ᵣ` of the temporal factor matrix is a seasonal time
//! series of length `t_i`; SOFIA fits an independent additive Holt-Winters
//! model to each, giving the vector-valued smoothing recursions of
//! Eq. (26): `diag(α), diag(β), diag(γ)` acting componentwise.

use sofia_tensor::Matrix;
use sofia_timeseries::fit::fit_holt_winters;
use sofia_timeseries::holt_winters::HoltWinters;
use sofia_timeseries::init::TooShort;

/// A bank of `R` independent Holt-Winters models, one per CP component of
/// the temporal factor.
#[derive(Debug, Clone)]
pub struct HwBank {
    models: Vec<HoltWinters>,
}

impl HwBank {
    /// Fits one Holt-Winters model per column of the temporal factor matrix
    /// `temporal` (length `t_i × R`), optimizing each `(αᵣ, βᵣ, γᵣ)` by SSE.
    pub fn fit(temporal: &Matrix, period: usize) -> Result<Self, TooShort> {
        let mut models = Vec::with_capacity(temporal.cols());
        for r in 0..temporal.cols() {
            let series = temporal.col(r);
            let fitted = fit_holt_winters(&series, period)?;
            models.push(fitted.model);
        }
        Ok(Self { models })
    }

    /// Builds a bank directly from pre-fitted models (used in tests).
    pub fn from_models(models: Vec<HoltWinters>) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        let m = models[0].period();
        assert!(
            models.iter().all(|h| h.period() == m),
            "all models must share the seasonal period"
        );
        Self { models }
    }

    /// Number of components `R`.
    pub fn rank(&self) -> usize {
        self.models.len()
    }

    /// Seasonal period `m`.
    pub fn period(&self) -> usize {
        self.models[0].period()
    }

    /// Component models.
    pub fn models(&self) -> &[HoltWinters] {
        &self.models
    }

    /// Vector one-step-ahead forecast
    /// `û⁽ᴺ⁾_{t|t−1} = l_{t−1} + b_{t−1} + s_{t−m}` (Eq. (19)).
    pub fn forecast_one(&self) -> Vec<f64> {
        self.models.iter().map(|h| h.forecast_one()).collect()
    }

    /// Vector h-step-ahead forecast (Eq. (6) applied per component).
    pub fn forecast(&self, h: usize) -> Vec<f64> {
        self.models
            .iter()
            .map(|h_model| h_model.forecast(h))
            .collect()
    }

    /// Vector smoothing update (Eq. (26)) with the realized temporal vector
    /// `u⁽ᴺ⁾_t`. Returns the per-component one-step-ahead errors.
    pub fn update(&mut self, u: &[f64]) -> Vec<f64> {
        assert_eq!(
            u.len(),
            self.models.len(),
            "temporal vector length mismatch"
        );
        self.models
            .iter_mut()
            .zip(u)
            .map(|(h, &y)| h.update(y))
            .collect()
    }

    /// Rescales component `k`'s state by `s` (level, trend, and seasonal
    /// components all scale linearly with the series). Used to re-express
    /// the bank when the factor scale convention changes — the additive HW
    /// recursions are linear in `(y, l, b, s)` jointly, so a model scaled
    /// by `s` behaves identically on a series scaled by `s`.
    pub fn scale_component(&mut self, k: usize, s: f64) {
        let model = &mut self.models[k];
        let params = *model.params();
        let st = model.state();
        let seasonal: Vec<f64> = st.seasonal.iter().map(|v| v * s).collect();
        let new_state = sofia_timeseries::holt_winters::HwState::new(
            st.level * s,
            st.trend * s,
            seasonal,
            st.phase,
        );
        *model = HoltWinters::new(params, new_state);
    }

    /// Current levels `l_t` of all components.
    pub fn levels(&self) -> Vec<f64> {
        self.models.iter().map(|h| h.state().level).collect()
    }

    /// Current trends `b_t` of all components.
    pub fn trends(&self) -> Vec<f64> {
        self.models.iter().map(|h| h.state().trend).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_timeseries::holt_winters::{HwParams, HwState};

    fn seasonal_matrix(len: usize, m: usize) -> Matrix {
        // Two columns: sinusoid + trend, and a square-ish wave.
        Matrix::from_fn(len, 2, |i, j| {
            let phase = 2.0 * std::f64::consts::PI * (i % m) as f64 / m as f64;
            if j == 0 {
                3.0 * phase.sin() + 0.05 * i as f64
            } else if (i % m) < m / 2 {
                2.0
            } else {
                -2.0
            }
        })
    }

    #[test]
    fn fit_bank_and_forecast_tracks_pattern() {
        let m = 12;
        let temporal = seasonal_matrix(3 * m, m);
        let bank = HwBank::fit(&temporal, m).unwrap();
        assert_eq!(bank.rank(), 2);
        assert_eq!(bank.period(), m);
        // Forecast the next step and compare to the pattern's continuation.
        let f = bank.forecast_one();
        let t = 3 * m;
        let phase = 2.0 * std::f64::consts::PI * (t % m) as f64 / m as f64;
        let truth0 = 3.0 * phase.sin() + 0.05 * t as f64;
        let truth1 = 2.0;
        assert!((f[0] - truth0).abs() < 0.5, "col0: {} vs {}", f[0], truth0);
        assert!((f[1] - truth1).abs() < 0.5, "col1: {} vs {}", f[1], truth1);
    }

    #[test]
    fn update_advances_all_components() {
        let models = vec![
            HoltWinters::new(
                HwParams::new(0.5, 0.1, 0.1),
                HwState::new(1.0, 0.0, vec![0.0; 3], 0),
            ),
            HoltWinters::new(
                HwParams::new(0.3, 0.2, 0.1),
                HwState::new(-1.0, 0.0, vec![0.0; 3], 0),
            ),
        ];
        let mut bank = HwBank::from_models(models);
        let errs = bank.update(&[2.0, 0.0]);
        assert_eq!(errs.len(), 2);
        assert!((errs[0] - 1.0).abs() < 1e-12);
        assert!((errs[1] - 1.0).abs() < 1e-12);
        assert!(bank.levels()[0] > 1.0);
        assert!(bank.levels()[1] > -1.0);
    }

    #[test]
    fn forecast_h_matches_component_models() {
        let m = 4;
        let temporal = seasonal_matrix(3 * m, m);
        let bank = HwBank::fit(&temporal, m).unwrap();
        for h in 1..=6 {
            let v = bank.forecast(h);
            for (r, model) in bank.models().iter().enumerate() {
                assert_eq!(v[r], model.forecast(h));
            }
        }
    }

    #[test]
    fn fit_too_short_errors() {
        let temporal = Matrix::zeros(3, 2);
        assert!(HwBank::fit(&temporal, 4).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn update_wrong_len_panics() {
        let models = vec![HoltWinters::new(
            HwParams::default(),
            HwState::new(0.0, 0.0, vec![0.0; 2], 0),
        )];
        let mut bank = HwBank::from_models(models);
        bank.update(&[1.0, 2.0]);
    }
}
