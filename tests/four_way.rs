//! N-way generality: the paper states SOFIA for general N-way tensors
//! (all derivations in §IV-V are for arbitrary N); the experiments use
//! 3-way streams. These tests exercise the full pipeline on **4-way**
//! streams (3 non-temporal modes) and on degenerate inputs.

use sofia::core::model::Sofia;
use sofia::tensor::{kruskal, DenseTensor, Mask, Matrix, ObservedTensor, Shape};
use sofia::SofiaConfig;

/// Rank-2 4-way stream: slices are 3-way tensors (4 × 3 × 2).
struct FourWay {
    factors: Vec<Matrix>,
    m: usize,
}

impl FourWay {
    fn new(m: usize) -> Self {
        let factors = vec![
            Matrix::from_fn(4, 2, |i, j| 0.7 + ((i + j) % 3) as f64 * 0.3),
            Matrix::from_fn(3, 2, |i, j| 1.1 - ((2 * i + j) % 4) as f64 * 0.25),
            Matrix::from_fn(2, 2, |i, j| 0.9 + ((i * 2 + j) % 2) as f64 * 0.4),
        ];
        Self { factors, m }
    }

    fn temporal(&self, t: usize) -> Vec<f64> {
        let phase = 2.0 * std::f64::consts::PI * (t % self.m) as f64 / self.m as f64;
        vec![2.0 + phase.sin(), -0.8 + 0.5 * phase.cos()]
    }

    fn clean(&self, t: usize) -> DenseTensor {
        let refs: Vec<&Matrix> = self.factors.iter().collect();
        kruskal::kruskal_slice(&refs, &self.temporal(t))
    }
}

fn config(m: usize) -> SofiaConfig {
    SofiaConfig::new(2, m)
        .with_lambdas(0.01, 0.01, 10.0)
        .with_als_limits(1e-4, 1, 150)
}

#[test]
fn four_way_clean_stream_tracks() {
    let m = 6;
    let gen = FourWay::new(m);
    let startup: Vec<ObservedTensor> = (0..3 * m)
        .map(|t| ObservedTensor::fully_observed(gen.clean(t)))
        .collect();
    let mut sofia = Sofia::init(&config(m), &startup, 5).expect("init");
    assert_eq!(sofia.factors().len(), 3, "three non-temporal modes");

    let mut total = 0.0;
    for t in 3 * m..5 * m {
        let truth = gen.clean(t);
        let out = sofia.step(&ObservedTensor::fully_observed(truth.clone()));
        assert_eq!(out.completed.shape().dims(), &[4, 3, 2]);
        total += (&out.completed - &truth).frobenius_norm() / truth.frobenius_norm();
    }
    let avg = total / (2 * m) as f64;
    assert!(avg < 0.15, "4-way clean stream NRE {avg}");
}

#[test]
fn four_way_with_missing_and_outliers() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let m = 6;
    let gen = FourWay::new(m);
    let mut rng = SmallRng::seed_from_u64(33);
    let corrupt = |t: usize, rng: &mut SmallRng| {
        let mut vals = gen.clean(t);
        for off in 0..vals.len() {
            if rng.gen::<f64>() < 0.1 {
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                vals.set_flat(off, sign * 15.0);
            }
        }
        let mask = Mask::random(vals.shape().clone(), 0.3, rng);
        ObservedTensor::new(vals, mask)
    };
    let startup: Vec<ObservedTensor> = (0..3 * m).map(|t| corrupt(t, &mut rng)).collect();
    let mut sofia = Sofia::init(&config(m), &startup, 9).expect("init");
    let mut total = 0.0;
    for t in 3 * m..6 * m {
        let truth = gen.clean(t);
        let out = sofia.step(&corrupt(t, &mut rng));
        total += (&out.completed - &truth).frobenius_norm() / truth.frobenius_norm();
    }
    let avg = total / (3 * m) as f64;
    // Tiny slices (24 entries) with 30% missing and ±5·max spikes are
    // high-variance; the bound checks corruption is survived, not won.
    assert!(avg < 0.8, "4-way corrupted stream NRE {avg}");
}

#[test]
fn four_way_forecasting() {
    let m = 6;
    let gen = FourWay::new(m);
    let startup: Vec<ObservedTensor> = (0..3 * m)
        .map(|t| ObservedTensor::fully_observed(gen.clean(t)))
        .collect();
    let mut sofia = Sofia::init(&config(m), &startup, 3).expect("init");
    let t_end = 5 * m;
    for t in 3 * m..t_end {
        sofia.step(&ObservedTensor::fully_observed(gen.clean(t)));
    }
    let mut total = 0.0;
    for h in 1..=m {
        let fc = sofia.forecast_slice(h);
        let truth = gen.clean(t_end + h - 1);
        total += (&fc - &truth).frobenius_norm() / truth.frobenius_norm();
    }
    let afe = total / m as f64;
    assert!(afe < 0.3, "4-way AFE {afe}");
}

#[test]
fn fully_missing_slice_is_survived() {
    // A completely unobserved slice mid-stream: SOFIA should coast on its
    // forecast and keep going.
    let m = 6;
    let gen = FourWay::new(m);
    let startup: Vec<ObservedTensor> = (0..3 * m)
        .map(|t| ObservedTensor::fully_observed(gen.clean(t)))
        .collect();
    let mut sofia = Sofia::init(&config(m), &startup, 7).expect("init");
    for t in 3 * m..4 * m {
        sofia.step(&ObservedTensor::fully_observed(gen.clean(t)));
    }
    // Blackout slice.
    let blank = ObservedTensor::new(
        DenseTensor::zeros(Shape::new(&[4, 3, 2])),
        Mask::all_missing(Shape::new(&[4, 3, 2])),
    );
    let t_blank = 4 * m;
    let out = sofia.step(&blank);
    let truth = gen.clean(t_blank);
    let rel = (&out.completed - &truth).frobenius_norm() / truth.frobenius_norm();
    assert!(rel < 0.2, "blackout-slice imputation NRE {rel}");
    // Next observed slice is handled normally.
    let truth_next = gen.clean(t_blank + 1);
    let out2 = sofia.step(&ObservedTensor::fully_observed(truth_next.clone()));
    let rel2 = (&out2.completed - &truth_next).frobenius_norm() / truth_next.frobenius_norm();
    assert!(rel2 < 0.2, "post-blackout NRE {rel2}");
}

#[test]
fn checkpoint_roundtrip_four_way() {
    let m = 6;
    let gen = FourWay::new(m);
    let startup: Vec<ObservedTensor> = (0..3 * m)
        .map(|t| ObservedTensor::fully_observed(gen.clean(t)))
        .collect();
    let mut sofia = Sofia::init(&config(m), &startup, 11).expect("init");
    for t in 3 * m..4 * m {
        sofia.step(&ObservedTensor::fully_observed(gen.clean(t)));
    }
    let text = sofia::core::checkpoint::save(&sofia);
    let mut restored = sofia::core::checkpoint::load(&text).expect("load");
    let slice = ObservedTensor::fully_observed(gen.clean(4 * m));
    let a = sofia.step(&slice);
    let b = restored.step(&slice);
    assert_eq!(a.completed.data(), b.completed.data());
}
