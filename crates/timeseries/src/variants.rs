//! Holt-Winters variants beyond the additive model SOFIA uses.
//!
//! §III-C of the paper notes the two classic variations (Hyndman &
//! Athanasopoulos): the **multiplicative** method, preferred when seasonal
//! variation scales with the level, and the additive method SOFIA adopts.
//! This module provides the multiplicative model plus the **damped-trend**
//! extension of the additive model (Gardner), so downstream users can pick
//! the family that fits their streams; both interoperate with
//! [`crate::fit::nelder_mead_box`] for parameter estimation.

use crate::fit::nelder_mead_box;
use crate::holt_winters::HwParams;

/// Multiplicative Holt-Winters:
///
/// ```text
/// l_t = α·(y_t / s_{t−m}) + (1 − α)(l_{t−1} + b_{t−1})
/// b_t = β·(l_t − l_{t−1}) + (1 − β)·b_{t−1}
/// s_t = γ·(y_t / (l_{t−1} + b_{t−1})) + (1 − γ)·s_{t−m}
/// ŷ_{t+h|t} = (l_t + h·b_t) · s_{t+h−m(⌊(h−1)/m⌋+1)}
/// ```
///
/// Seasonal components are ratios (≈ 1), so the model requires positive
/// levels; constructors validate this.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiplicativeHw {
    params: HwParams,
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    phase: usize,
}

impl MultiplicativeHw {
    /// Creates a model from initial components. `seasonal` are the per-phase
    /// ratios; `phase` indexes the next observation's phase.
    pub fn new(params: HwParams, level: f64, trend: f64, seasonal: Vec<f64>, phase: usize) -> Self {
        assert!(level > 0.0, "multiplicative HW needs a positive level");
        assert!(!seasonal.is_empty() && phase < seasonal.len());
        assert!(
            seasonal.iter().all(|&s| s > 0.0),
            "seasonal ratios must be positive"
        );
        Self {
            params,
            level,
            trend,
            seasonal,
            phase,
        }
    }

    /// Initializes from at least two full seasons: the level is the first
    /// season's mean, the trend the season-over-season mean change, and the
    /// seasonal ratios each phase's average ratio to its season mean.
    pub fn from_series(series: &[f64], m: usize, params: HwParams) -> Option<Self> {
        if series.len() < 2 * m || m == 0 {
            return None;
        }
        let k = series.len() / m;
        let means: Vec<f64> = (0..k)
            .map(|s| series[s * m..(s + 1) * m].iter().sum::<f64>() / m as f64)
            .collect();
        if means.iter().any(|&v| v <= 0.0) {
            return None;
        }
        let level = means[0];
        let trend = (means[k - 1] - means[0]) / ((k - 1) * m) as f64;
        let mut seasonal = vec![0.0; m];
        for (phase, s_val) in seasonal.iter_mut().enumerate() {
            let mut acc = 0.0;
            for s in 0..k {
                acc += series[s * m + phase] / means[s];
            }
            *s_val = acc / k as f64;
        }
        // Normalize ratios to average 1.
        let mean_ratio = seasonal.iter().sum::<f64>() / m as f64;
        for s in &mut seasonal {
            *s /= mean_ratio;
            if *s <= 0.0 {
                return None;
            }
        }
        Some(Self::new(params, level - trend, trend, seasonal, 0))
    }

    /// Seasonal period `m`.
    pub fn period(&self) -> usize {
        self.seasonal.len()
    }

    /// The smoothing parameters.
    pub fn params(&self) -> &HwParams {
        &self.params
    }

    /// Current level `l_t`.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Current trend `b_t`.
    pub fn trend(&self) -> f64 {
        self.trend
    }

    /// Per-phase seasonal ratios.
    pub fn seasonal(&self) -> &[f64] {
        &self.seasonal
    }

    /// Phase of the next observation within the cycle.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// One-step-ahead forecast.
    pub fn forecast_one(&self) -> f64 {
        (self.level + self.trend) * self.seasonal[self.phase]
    }

    /// h-step-ahead forecast.
    pub fn forecast(&self, h: usize) -> f64 {
        assert!(h >= 1);
        let m = self.period();
        (self.level + h as f64 * self.trend) * self.seasonal[(self.phase + h - 1) % m]
    }

    /// Observes `y_t`; returns the one-step-ahead error.
    pub fn update(&mut self, y: f64) -> f64 {
        let HwParams { alpha, beta, gamma } = self.params;
        let prev_level = self.level;
        let prev_trend = self.trend;
        let s_prev = self.seasonal[self.phase];
        let err = y - (prev_level + prev_trend) * s_prev;

        self.level = alpha * (y / s_prev) + (1.0 - alpha) * (prev_level + prev_trend);
        self.trend = beta * (self.level - prev_level) + (1.0 - beta) * prev_trend;
        let base = prev_level + prev_trend;
        if base > 0.0 {
            self.seasonal[self.phase] = gamma * (y / base) + (1.0 - gamma) * s_prev;
        }
        self.phase = (self.phase + 1) % self.period();
        err
    }

    /// Sum of squared one-step errors over a series (non-mutating).
    pub fn sse(&self, series: &[f64]) -> f64 {
        let mut model = self.clone();
        series
            .iter()
            .map(|&y| {
                let e = model.update(y);
                e * e
            })
            .sum()
    }

    /// Fits `(α, β, γ)` by SSE over the box `[0,1]³`, then advances the
    /// state through the series. Returns `None` when the series is too
    /// short or non-positive.
    pub fn fit(series: &[f64], m: usize) -> Option<Self> {
        let init = Self::from_series(series, m, HwParams::default())?;
        let mut objective = |p: &[f64]| -> f64 {
            let params = HwParams::clamped(p[0], p[1], p[2]);
            let model = Self {
                params,
                ..init.clone()
            };
            model.sse(series)
        };
        let (x, _) = nelder_mead_box(
            &mut objective,
            &[0.3, 0.1, 0.1],
            &[0.0; 3],
            &[1.0; 3],
            0.15,
            200,
            1e-10,
        );
        let mut fitted = Self {
            params: HwParams::clamped(x[0], x[1], x[2]),
            ..init
        };
        for &y in series {
            fitted.update(y);
        }
        Some(fitted)
    }
}

/// Damped-trend additive Holt-Winters (Gardner & McKenzie): the trend is
/// multiplied by `φ_d ∈ (0, 1]` each step, so long-horizon forecasts
/// flatten instead of extrapolating linearly:
///
/// ```text
/// l_t = α(y_t − s_{t−m}) + (1 − α)(l_{t−1} + φ_d·b_{t−1})
/// b_t = β(l_t − l_{t−1}) + (1 − β)·φ_d·b_{t−1}
/// s_t = γ(y_t − l_{t−1} − φ_d·b_{t−1}) + (1 − γ)s_{t−m}
/// ŷ_{t+h|t} = l_t + (φ_d + φ_d² + ⋯ + φ_d^h)·b_t + s_{…}
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DampedHw {
    params: HwParams,
    /// Trend damping `φ_d ∈ (0, 1]` (1 recovers the plain additive model).
    pub damping: f64,
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    phase: usize,
}

impl DampedHw {
    /// Creates a damped-trend model.
    pub fn new(
        params: HwParams,
        damping: f64,
        level: f64,
        trend: f64,
        seasonal: Vec<f64>,
        phase: usize,
    ) -> Self {
        assert!(damping > 0.0 && damping <= 1.0, "damping must be in (0, 1]");
        assert!(!seasonal.is_empty() && phase < seasonal.len());
        Self {
            params,
            damping,
            level,
            trend,
            seasonal,
            phase,
        }
    }

    /// Seasonal period `m`.
    pub fn period(&self) -> usize {
        self.seasonal.len()
    }

    /// The smoothing parameters.
    pub fn params(&self) -> &HwParams {
        &self.params
    }

    /// Current level `l_t`.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Current trend `b_t`.
    pub fn trend(&self) -> f64 {
        self.trend
    }

    /// Per-phase seasonal components.
    pub fn seasonal(&self) -> &[f64] {
        &self.seasonal
    }

    /// Phase of the next observation within the cycle.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Geometric damping sum `φ_d + φ_d² + ⋯ + φ_d^h`.
    fn damp_sum(&self, h: usize) -> f64 {
        if (self.damping - 1.0).abs() < 1e-12 {
            h as f64
        } else {
            self.damping * (1.0 - self.damping.powi(h as i32)) / (1.0 - self.damping)
        }
    }

    /// h-step-ahead forecast.
    pub fn forecast(&self, h: usize) -> f64 {
        assert!(h >= 1);
        let m = self.period();
        self.level + self.damp_sum(h) * self.trend + self.seasonal[(self.phase + h - 1) % m]
    }

    /// Observes `y_t`; returns the one-step-ahead error.
    pub fn update(&mut self, y: f64) -> f64 {
        let HwParams { alpha, beta, gamma } = self.params;
        let phi = self.damping;
        let prev_level = self.level;
        let damped_trend = phi * self.trend;
        let s_prev = self.seasonal[self.phase];
        let err = y - (prev_level + damped_trend + s_prev);

        self.level = alpha * (y - s_prev) + (1.0 - alpha) * (prev_level + damped_trend);
        self.trend = beta * (self.level - prev_level) + (1.0 - beta) * damped_trend;
        self.seasonal[self.phase] =
            gamma * (y - prev_level - damped_trend) + (1.0 - gamma) * s_prev;
        self.phase = (self.phase + 1) % self.period();
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::holt_winters::{HoltWinters, HwState};

    #[test]
    fn multiplicative_tracks_proportional_seasonality() {
        // y_t = level(t) · ratio(t mod m) with growing level.
        let ratios = [1.5, 0.5, 1.0, 1.0];
        let series: Vec<f64> = (0..40)
            .map(|t| (10.0 + 0.5 * t as f64) * ratios[t % 4])
            .collect();
        let model = MultiplicativeHw::fit(&series, 4).expect("fit");
        for h in 1..=4 {
            let t = 40 + h - 1;
            let truth = (10.0 + 0.5 * t as f64) * ratios[t % 4];
            let fc = model.forecast(h);
            assert!((fc - truth).abs() / truth < 0.1, "h={h}: {fc} vs {truth}");
        }
    }

    #[test]
    fn multiplicative_beats_additive_on_proportional_series() {
        let ratios = [1.8, 0.4, 0.8, 1.0];
        let series: Vec<f64> = (0..48)
            .map(|t| (5.0 + 0.8 * t as f64) * ratios[t % 4])
            .collect();
        let mult = MultiplicativeHw::fit(&series, 4).expect("fit");
        let add = crate::fit::fit_holt_winters(&series, 4).expect("fit");
        let mut mult_err = 0.0;
        let mut add_err = 0.0;
        for h in 1..=8 {
            let t = 48 + h - 1;
            let truth = (5.0 + 0.8 * t as f64) * ratios[t % 4];
            mult_err += (mult.forecast(h) - truth).abs();
            add_err += (add.model.forecast(h) - truth).abs();
        }
        assert!(
            mult_err < add_err,
            "multiplicative {mult_err} should beat additive {add_err}"
        );
    }

    #[test]
    fn multiplicative_rejects_nonpositive_series() {
        let series = vec![-1.0; 20];
        assert!(MultiplicativeHw::fit(&series, 4).is_none());
    }

    #[test]
    fn multiplicative_from_series_too_short() {
        assert!(MultiplicativeHw::from_series(&[1.0; 5], 4, HwParams::default()).is_none());
    }

    #[test]
    fn damped_with_phi_one_equals_plain_additive() {
        let params = HwParams::new(0.4, 0.2, 0.1);
        let seasonal = vec![1.0, -1.0, 0.5, -0.5];
        let mut damped = DampedHw::new(params, 1.0, 3.0, 0.2, seasonal.clone(), 0);
        let mut plain = HoltWinters::new(params, HwState::new(3.0, 0.2, seasonal, 0));
        for t in 0..20 {
            let y = 3.0 + 0.3 * t as f64 + [1.0, -1.0, 0.5, -0.5][t % 4];
            let e1 = damped.update(y);
            let e2 = plain.update(y);
            assert!((e1 - e2).abs() < 1e-12);
        }
        for h in 1..=6 {
            assert!((damped.forecast(h) - plain.forecast(h)).abs() < 1e-10);
        }
    }

    #[test]
    fn damped_forecasts_flatten_at_long_horizons() {
        let params = HwParams::new(0.3, 0.1, 0.1);
        let damped = DampedHw::new(params, 0.8, 10.0, 2.0, vec![0.0; 4], 0);
        // Infinite-horizon limit: level + trend·φ/(1−φ) = 10 + 2·4 = 18.
        let far = damped.forecast(200);
        assert!((far - 18.0).abs() < 1e-6, "far forecast {far}");
        // Short horizon stays below the limit and is increasing.
        assert!(damped.forecast(1) < damped.forecast(5));
        assert!(damped.forecast(5) < far + 1e-9);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn damped_rejects_bad_phi() {
        DampedHw::new(HwParams::default(), 1.5, 0.0, 0.0, vec![0.0; 2], 0);
    }
}
