//! Summary statistics over error series — quantiles, recovery time, and
//! head-to-head comparisons used by the experiment reports.

use crate::metrics::StreamSummary;

/// Empirical quantile of a sample (linear interpolation between order
/// statistics). `q ∈ [0, 1]`.
///
/// # Panics
/// Panics if the sample is empty or `q` is outside `[0, 1]`.
pub fn quantile(sample: &[f64], q: f64) -> f64 {
    assert!(!sample.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level out of [0,1]");
    let mut sorted: Vec<f64> = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Five-number NRE summary of a stream run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NreSummary {
    /// Minimum NRE.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum NRE.
    pub max: f64,
}

/// Computes the five-number summary of a run's per-step NRE.
pub fn nre_summary(summary: &StreamSummary) -> NreSummary {
    let nres: Vec<f64> = summary.steps.iter().map(|s| s.nre).collect();
    NreSummary {
        min: quantile(&nres, 0.0),
        p25: quantile(&nres, 0.25),
        median: quantile(&nres, 0.5),
        p75: quantile(&nres, 0.75),
        max: quantile(&nres, 1.0),
    }
}

/// Number of steps after `from_t` until the NRE first drops below
/// `threshold` (recovery time after a disturbance); `None` if it never
/// does within the run.
pub fn recovery_time(summary: &StreamSummary, from_t: usize, threshold: f64) -> Option<usize> {
    summary
        .steps
        .iter()
        .filter(|s| s.t >= from_t)
        .find(|s| s.nre < threshold)
        .map(|s| s.t - from_t)
}

/// Fraction of time steps on which `a` beats `b` (strictly lower NRE).
/// Both runs must cover identical time indices.
pub fn win_rate(a: &StreamSummary, b: &StreamSummary) -> f64 {
    assert_eq!(a.steps.len(), b.steps.len(), "run length mismatch");
    if a.steps.is_empty() {
        return f64::NAN;
    }
    let wins = a
        .steps
        .iter()
        .zip(&b.steps)
        .filter(|(x, y)| {
            debug_assert_eq!(x.t, y.t);
            x.nre < y.nre
        })
        .count();
    wins as f64 / a.steps.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StepRecord;
    use std::time::Duration;

    fn summary(nres: &[f64]) -> StreamSummary {
        StreamSummary {
            method: "x".into(),
            steps: nres
                .iter()
                .enumerate()
                .map(|(t, &nre)| StepRecord {
                    t,
                    nre,
                    elapsed: Duration::ZERO,
                })
                .collect(),
        }
    }

    #[test]
    fn quantile_basics() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 4.0);
        assert!((quantile(&s, 0.5) - 2.5).abs() < 1e-12);
        // Order-independence.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(quantile(&shuffled, 0.5), quantile(&s, 0.5));
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn five_number_summary() {
        let s = summary(&[0.5, 0.1, 0.3, 0.2, 0.4]);
        let n = nre_summary(&s);
        assert_eq!(n.min, 0.1);
        assert_eq!(n.max, 0.5);
        assert!((n.median - 0.3).abs() < 1e-12);
        assert!(n.p25 <= n.median && n.median <= n.p75);
    }

    #[test]
    fn recovery_time_found_and_not_found() {
        let s = summary(&[0.9, 0.8, 0.7, 0.05, 0.04]);
        assert_eq!(recovery_time(&s, 1, 0.1), Some(2));
        assert_eq!(recovery_time(&s, 0, 0.01), None);
    }

    #[test]
    fn win_rate_counts_strict_wins() {
        let a = summary(&[0.1, 0.3, 0.2]);
        let b = summary(&[0.2, 0.3, 0.1]);
        // a wins at t0, ties t1, loses t2 → 1/3.
        assert!((win_rate(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }
}
