//! Fitting Holt-Winters smoothing parameters by SSE minimization.
//!
//! The paper fits `(α, β, γ)` with L-BFGS-B (§V-B). This module substitutes
//! a bounded Nelder-Mead simplex search over the box `[0,1]³` — the
//! objective is a smooth 3-variable SSE, where derivative-free simplex
//! search reliably reaches the same optima at this dimensionality (see
//! DESIGN.md). The optimizer is generic over dimension so baselines reuse
//! it for their own small parameter searches.

use crate::holt_winters::{HoltWinters, HwParams};
use crate::init::{initial_state, TooShort};

/// A Holt-Winters model fitted to a series, together with diagnostics.
#[derive(Debug, Clone)]
pub struct FittedHoltWinters {
    /// The fitted model, with state advanced through the whole series
    /// (ready to forecast past its end).
    pub model: HoltWinters,
    /// The optimized smoothing parameters.
    pub params: HwParams,
    /// Sum of squared one-step-ahead errors at the optimum.
    pub sse: f64,
}

/// Minimizes `f` over the box `[lo_i, hi_i]^n` by Nelder-Mead with
/// projection onto the box. Returns `(argmin, min)`.
///
/// Deterministic: the initial simplex is built from `x0` by coordinate
/// steps of `step`.
pub fn nelder_mead_box(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x0: &[f64],
    lo: &[f64],
    hi: &[f64],
    step: f64,
    max_iter: usize,
    tol: f64,
) -> (Vec<f64>, f64) {
    let n = x0.len();
    assert_eq!(lo.len(), n);
    assert_eq!(hi.len(), n);
    let clamp = |x: &mut Vec<f64>| {
        for i in 0..n {
            x[i] = x[i].clamp(lo[i], hi[i]);
        }
    };

    // Initial simplex: x0 plus coordinate perturbations.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    let mut base = x0.to_vec();
    clamp(&mut base);
    simplex.push(base.clone());
    for i in 0..n {
        let mut v = base.clone();
        // Step inward if stepping outward would leave the box.
        if v[i] + step <= hi[i] {
            v[i] += step;
        } else {
            v[i] -= step;
        }
        clamp(&mut v);
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| f(v)).collect();

    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    for _ in 0..max_iter {
        // Order simplex by value.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        if (values[worst] - values[best]).abs() <= tol * (1.0 + values[best].abs()) {
            break;
        }

        // Centroid of all but the worst point.
        let mut centroid = vec![0.0; n];
        for &i in order.iter().take(n) {
            for d in 0..n {
                centroid[d] += simplex[i][d] / n as f64;
            }
        }

        // Reflection.
        let mut reflected: Vec<f64> = (0..n)
            .map(|d| centroid[d] + ALPHA * (centroid[d] - simplex[worst][d]))
            .collect();
        clamp(&mut reflected);
        let fr = f(&reflected);

        if fr < values[best] {
            // Expansion.
            let mut expanded: Vec<f64> = (0..n)
                .map(|d| centroid[d] + GAMMA * (reflected[d] - centroid[d]))
                .collect();
            clamp(&mut expanded);
            let fe = f(&expanded);
            if fe < fr {
                simplex[worst] = expanded;
                values[worst] = fe;
            } else {
                simplex[worst] = reflected;
                values[worst] = fr;
            }
        } else if fr < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = fr;
        } else {
            // Contraction (toward the better of worst/reflected).
            let (toward, f_toward) = if fr < values[worst] {
                (reflected.clone(), fr)
            } else {
                (simplex[worst].clone(), values[worst])
            };
            let mut contracted: Vec<f64> = (0..n)
                .map(|d| centroid[d] + RHO * (toward[d] - centroid[d]))
                .collect();
            clamp(&mut contracted);
            let fc = f(&contracted);
            if fc < f_toward {
                simplex[worst] = contracted;
                values[worst] = fc;
            } else {
                // Shrink everything toward the best point.
                let best_point = simplex[best].clone();
                for i in 0..=n {
                    if i == best {
                        continue;
                    }
                    for d in 0..n {
                        simplex[i][d] = best_point[d] + SIGMA * (simplex[i][d] - best_point[d]);
                    }
                    clamp(&mut simplex[i]);
                    values[i] = f(&simplex[i]);
                }
            }
        }
    }

    let mut best_idx = 0;
    for i in 1..=n {
        if values[i] < values[best_idx] {
            best_idx = i;
        }
    }
    (simplex[best_idx].clone(), values[best_idx])
}

/// Fits the additive Holt-Winters model to `series` with period `m`:
/// initializes components from the data ([`initial_state`]), optimizes
/// `(α, β, γ)` over `[0,1]³` by SSE, and returns the fitted model with its
/// state advanced through the entire series (paper §V-B).
pub fn fit_holt_winters(series: &[f64], m: usize) -> Result<FittedHoltWinters, TooShort> {
    let init = initial_state(series, m)?;

    let mut objective = |p: &[f64]| -> f64 {
        let params = HwParams::clamped(p[0], p[1], p[2]);
        let model = HoltWinters::new(params, init.clone());
        model.sse(series)
    };

    // Multi-start to dodge shallow local minima; starts cover the corners
    // of behaviour (fast/slow level tracking).
    let starts: [[f64; 3]; 3] = [[0.3, 0.1, 0.1], [0.7, 0.05, 0.3], [0.1, 0.01, 0.05]];
    let lo = [0.0; 3];
    let hi = [1.0; 3];
    let mut best: Option<(Vec<f64>, f64)> = None;
    for s in &starts {
        let (x, v) = nelder_mead_box(&mut objective, s, &lo, &hi, 0.15, 200, 1e-10);
        if best.as_ref().is_none_or(|(_, bv)| v < *bv) {
            best = Some((x, v));
        }
    }
    let (x, sse) = best.expect("at least one start");
    let params = HwParams::clamped(x[0], x[1], x[2]);

    let mut model = HoltWinters::new(params, init);
    model.run(series);
    Ok(FittedHoltWinters { model, params, sse })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let mut f = |x: &[f64]| (x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2);
        let (x, v) = nelder_mead_box(
            &mut f,
            &[0.5, 0.5],
            &[0.0, 0.0],
            &[1.0, 1.0],
            0.2,
            300,
            1e-14,
        );
        assert!((x[0] - 0.3).abs() < 1e-4, "x0 {}", x[0]);
        assert!((x[1] - 0.7).abs() < 1e-4, "x1 {}", x[1]);
        assert!(v < 1e-7);
    }

    #[test]
    fn nelder_mead_respects_box() {
        // Unconstrained minimum at (2, 2) is outside the box: solution must
        // sit on the boundary (1, 1).
        let mut f = |x: &[f64]| (x[0] - 2.0).powi(2) + (x[1] - 2.0).powi(2);
        let (x, _) = nelder_mead_box(
            &mut f,
            &[0.5, 0.5],
            &[0.0, 0.0],
            &[1.0, 1.0],
            0.2,
            300,
            1e-14,
        );
        assert!(x[0] <= 1.0 + 1e-12 && x[1] <= 1.0 + 1e-12);
        assert!((x[0] - 1.0).abs() < 1e-3);
        assert!((x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn nelder_mead_1d() {
        let mut f = |x: &[f64]| (x[0] - 0.25).powi(2);
        let (x, _) = nelder_mead_box(&mut f, &[0.9], &[0.0], &[1.0], 0.1, 200, 1e-14);
        assert!((x[0] - 0.25).abs() < 1e-4);
    }

    #[test]
    fn fit_recovers_seasonal_trend_series() {
        let pattern = [3.0, -1.0, -2.0, 0.0];
        let series: Vec<f64> = (0..48)
            .map(|t| 10.0 + 0.2 * t as f64 + pattern[t % 4])
            .collect();
        let fitted = fit_holt_winters(&series, 4).unwrap();
        // Forecast the next 8 points; compare against ground truth.
        for h in 1..=8 {
            let t = 48 + h - 1;
            let truth = 10.0 + 0.2 * t as f64 + pattern[t % 4];
            let fc = fitted.model.forecast(h);
            assert!(
                (fc - truth).abs() < 0.5,
                "h={h}: forecast {fc} vs truth {truth}"
            );
        }
    }

    #[test]
    fn fit_sse_not_worse_than_default_params() {
        let pattern = [1.0, 0.0, -1.0];
        let series: Vec<f64> = (0..30)
            .map(|t| 5.0 + pattern[t % 3] + 0.1 * ((t * 7 % 5) as f64 - 2.0))
            .collect();
        let fitted = fit_holt_winters(&series, 3).unwrap();
        let default_model =
            HoltWinters::new(HwParams::default(), initial_state(&series, 3).unwrap());
        assert!(fitted.sse <= default_model.sse(&series) + 1e-9);
    }

    #[test]
    fn fit_too_short_errors() {
        assert!(fit_holt_winters(&[1.0, 2.0], 4).is_err());
    }

    #[test]
    fn fit_is_deterministic() {
        let series: Vec<f64> = (0..24)
            .map(|t| (t as f64 * 0.7).sin() * 3.0 + t as f64 * 0.1)
            .collect();
        let a = fit_holt_winters(&series, 6).unwrap();
        let b = fit_holt_winters(&series, 6).unwrap();
        assert_eq!(a.params, b.params);
        assert_eq!(a.sse, b.sse);
    }
}
