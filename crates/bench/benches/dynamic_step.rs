//! Criterion bench: SOFIA's dynamic update cost (Lemma 2 / Fig. 7).
//!
//! Measures `DynamicState::update_only` — the `O(|Ω_t|·N·R)` model update —
//! across slice sizes, observation fractions, and ranks. Linear growth in
//! `|Ω_t|` and in `R` corroborates Lemma 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sofia_core::dynamic::DynamicState;
use sofia_core::hw::HwBank;
use sofia_core::SofiaConfig;
use sofia_datagen::seasonal::{SeasonalComponent, SeasonalStream};
use sofia_datagen::stream::TensorStream;
use sofia_tensor::{Mask, Matrix, ObservedTensor};
use sofia_timeseries::holt_winters::{HoltWinters, HwParams, HwState};

fn make_state(dim: usize, rank: usize, m: usize) -> (SeasonalStream, DynamicState) {
    let factors: Vec<Matrix> = (0..2)
        .map(|n| Matrix::from_fn(dim, rank, |i, k| 0.1 + ((i + k + n) % 7) as f64 * 0.05))
        .collect();
    let components: Vec<SeasonalComponent> = (0..rank)
        .map(|r| SeasonalComponent::simple(1.0, r as f64 * 0.7, 2.0, 0.0))
        .collect();
    let stream = SeasonalStream::new(factors.clone(), components, m);
    let history: Vec<Vec<f64>> = (0..m).map(|t| stream.temporal_at(t)).collect();
    let models: Vec<HoltWinters> = (0..rank)
        .map(|r| {
            let series: Vec<f64> = (0..m).map(|t| stream.temporal_at(t)[r]).collect();
            let mean = series.iter().sum::<f64>() / m as f64;
            let seasonal: Vec<f64> = series.iter().map(|v| v - mean).collect();
            HoltWinters::new(
                HwParams::new(0.2, 0.05, 0.1),
                HwState::new(mean, 0.0, seasonal, 0),
            )
        })
        .collect();
    let config = SofiaConfig::new(rank, m);
    let state = DynamicState::new(config, factors, history, HwBank::from_models(models));
    (stream, state)
}

fn bench_vs_entries(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_step_vs_entries");
    for dim in [20usize, 40, 80, 160] {
        let (stream, state) = make_state(dim, 5, 10);
        let slice = ObservedTensor::fully_observed(stream.clean_slice(3));
        group.throughput(Throughput::Elements((dim * dim) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dim * dim), &dim, |b, _| {
            b.iter_batched(
                || state.clone(),
                |mut st| st.update_only(&slice),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_vs_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_step_vs_rank");
    for rank in [2usize, 5, 10, 20] {
        let (stream, state) = make_state(60, rank, 10);
        let slice = ObservedTensor::fully_observed(stream.clean_slice(3));
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, _| {
            b.iter_batched(
                || state.clone(),
                |mut st| st.update_only(&slice),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_vs_missingness(c: &mut Criterion) {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut group = c.benchmark_group("dynamic_step_vs_observed_fraction");
    for missing_pct in [0u32, 50, 90] {
        let (stream, state) = make_state(80, 5, 10);
        let clean = stream.clean_slice(3);
        let mut rng = SmallRng::seed_from_u64(7);
        let mask = Mask::random(clean.shape().clone(), missing_pct as f64 / 100.0, &mut rng);
        let slice = ObservedTensor::new(clean, mask);
        group.throughput(Throughput::Elements(slice.count_observed() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("missing_{missing_pct}pct")),
            &missing_pct,
            |b, _| {
                b.iter_batched(
                    || state.clone(),
                    |mut st| st.update_only(&slice),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_vs_entries,
    bench_vs_rank,
    bench_vs_missingness
);
criterion_main!(benches);
