//! The exact half of the observability pair: mergeable moment partials.

use crate::{parse_f64s_exact, parse_usize_field, total_max, total_min};
use sofia_core::checkpoint::CheckpointError;
use sofia_core::snapshot::wire;

/// Exact mergeable moment partials of a sample set: count, min, max,
/// sum, and sum of squares.
///
/// This is the `stats_agg`-style summary: because every field is a
/// *partial* (not a derived statistic), [`StatsSummary::merge`] simply
/// adds the partials — a rollup over shards, nodes, or time windows is
/// exactly the summary that observing the union would have produced,
/// with no step-weighting bias. Mean and variance are derived on read.
///
/// **Exactness.** `n`, `min`, and `max` are exact under any merge order.
/// `sum`/`sum_sq` merges add the partials with IEEE 754 `+`, which is
/// commutative bit-exactly (`merge(a, b) == merge(b, a)`) but not
/// associative — a bit-reproducible fold over three or more summaries
/// must fix its fold order (the fleet folds shards in index order).
///
/// Non-finite observations are ignored (see the crate docs); `sum_sq`
/// may still legitimately overflow to `+∞` for huge inputs, and the
/// empty summary stores `min = +∞` / `max = −∞` sentinels (hidden
/// behind the `Option` accessors). The wire form round-trips every
/// f64 bit pattern verbatim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSummary {
    n: u64,
    min: f64,
    max: f64,
    sum: f64,
    sum_sq: f64,
}

impl Default for StatsSummary {
    fn default() -> Self {
        StatsSummary::new()
    }
}

impl StatsSummary {
    /// The empty summary (identity element of [`StatsSummary::merge`]).
    pub fn new() -> Self {
        StatsSummary {
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Folds in one observation; non-finite values are ignored.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        self.min = total_min(self.min, x);
        self.max = total_max(self.max, x);
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Adds another summary's partials into this one. Commutative
    /// bit-exactly; see the type docs for the fold-order caveat.
    pub fn merge(&mut self, other: &StatsSummary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        self.n += other.n;
        self.min = total_min(self.min, other.min);
        self.max = total_max(self.max, other.max);
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Smallest observation, `None` while empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, `None` while empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum partial (0 while empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sum-of-squares partial (0 while empty).
    pub fn sum_sq(&self) -> f64 {
        self.sum_sq
    }

    /// Arithmetic mean, `None` while empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Population variance (`E[x²] − E[x]²`, clamped at 0 against
    /// cancellation), `None` while empty.
    pub fn variance(&self) -> Option<f64> {
        self.mean().map(|m| {
            let v = self.sum_sq / self.n as f64 - m * m;
            if v > 0.0 {
                v
            } else {
                0.0
            }
        })
    }

    /// Population standard deviation, `None` while empty.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Appends the two-line wire form (see [`StatsSummary::from_lines`]).
    pub fn push_wire(&self, out: &mut String) {
        out.push_str("moments ");
        out.push_str(&self.n.to_string());
        out.push('\n');
        wire::push_f64s(out, "mstate", [self.min, self.max, self.sum, self.sum_sq]);
    }

    /// Parses the two-line wire form:
    ///
    /// ```text
    /// moments <n>
    /// mstate <min> <max> <sum> <sum-sq>
    /// ```
    ///
    /// with the four floats as 16-hex-digit IEEE 754 bit patterns.
    /// Every bit pattern (NaN, ±∞, subnormals, the empty-summary
    /// sentinels) round-trips verbatim; a wrong field count or a
    /// non-hex token is a typed error, never a panic.
    pub fn from_lines(lines: [&str; 2]) -> Result<Self, CheckpointError> {
        let n = parse_usize_field(lines[0], "moments")? as u64;
        let state = parse_f64s_exact(lines[1], "mstate", 4)?;
        Ok(StatsSummary {
            n,
            min: state[0],
            max: state[1],
            sum: state[2],
            sum_sq: state[3],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_of(values: &[f64]) -> StatsSummary {
        let mut s = StatsSummary::new();
        for &v in values {
            s.observe(v);
        }
        s
    }

    #[test]
    fn empty_summary_hides_sentinels() {
        let s = StatsSummary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
    }

    #[test]
    fn partials_and_derived_stats() {
        let s = summary_of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.variance(), Some(4.0));
        assert_eq!(s.stddev(), Some(2.0));
    }

    #[test]
    fn non_finite_observations_ignored() {
        let mut s = summary_of(&[1.0]);
        s.observe(f64::NAN);
        s.observe(f64::INFINITY);
        s.observe(f64::NEG_INFINITY);
        assert_eq!(s.count(), 1);
        assert_eq!(s.sum(), 1.0);
    }

    #[test]
    fn merge_adds_partials_exactly() {
        let a = summary_of(&[1.5, -2.25, 8.0]);
        let b = summary_of(&[0.5, 100.0]);
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab.count(), 5);
        assert_eq!(ab.sum().to_bits(), (a.sum() + b.sum()).to_bits());
        assert_eq!(ab.sum_sq().to_bits(), (a.sum_sq() + b.sum_sq()).to_bits());
        assert_eq!(ab.min(), Some(-2.25));
        assert_eq!(ab.max(), Some(100.0));

        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative bit-exactly");
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = summary_of(&[3.0, 4.0]);
        let mut left = StatsSummary::new();
        left.merge(&a);
        assert_eq!(left, a);
        let mut right = a;
        right.merge(&StatsSummary::new());
        assert_eq!(right, a);
    }

    #[test]
    fn wire_round_trips_bit_exactly() {
        let s = summary_of(&[1.5, -0.0, 1e-310, 3.0e300]);
        let mut text = String::new();
        s.push_wire(&mut text);
        let lines: Vec<&str> = text.lines().collect();
        let back = StatsSummary::from_lines([lines[0], lines[1]]).unwrap();
        assert_eq!(back, s);
        let mut again = String::new();
        back.push_wire(&mut again);
        assert_eq!(again, text);
    }

    #[test]
    fn wire_rejects_malformed_never_panics() {
        for (a, b) in [
            ("moments x", "mstate 0 0 0 0"),
            ("moments 1 2", "mstate 0 0 0 0"),
            ("m 1", "mstate 0 0 0 0"),
            ("moments 1", "mstate 0 0 0"),
            ("moments 1", "mstate 0 0 0 0 0"),
            ("moments 1", "mstate zz 0 0 0"),
            ("moments 1", "wrong 0 0 0 0"),
            ("", ""),
        ] {
            assert!(StatsSummary::from_lines([a, b]).is_err(), "{a:?}/{b:?}");
        }
    }
}
