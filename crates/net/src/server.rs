//! The serving side: an accept loop, one handler thread per connection,
//! and pipelined replies settled off [`QueryTicket`]s.
//!
//! ## Threading model
//!
//! * **Accept thread** — polls a non-blocking listener, spawning one
//!   handler per connection.
//! * **Reader (handler) thread** — parses frames, dispatches them to
//!   the shared [`Fleet`], and pushes a completion per request onto the
//!   connection's reply queue. Queries and batches are dispatched
//!   **without waiting**: the reader hands the unsettled
//!   [`QueryTicket`]s to the responder and keeps reading, so one client
//!   can have many queries in flight (that is the pipelining).
//! * **Responder thread** — settles completions strictly in request
//!   order and writes the reply frames, so clients correlate replies by
//!   position (the echoed request id double-checks it).
//!
//! ## Shutdown
//!
//! A client `shutdown` frame requests a graceful stop:
//! [`Server::run`] notices, stops accepting, half-closes every
//! connection's read side (the responders still drain their queued
//! replies), joins the threads, and finally calls [`Fleet::shutdown`] —
//! every queue drained, final checkpoints written. [`Server::abort`] is
//! the crash-faithful opposite (connections torn down, [`Fleet::abort`],
//! no final checkpoints), which is what the loopback crash-recovery
//! test exercises.

use crate::wire::{
    err_body, ok_body, push_fleet_stats, read_frame, write_frame, FrameError, Request, ShardMap,
    MAX_FRAME_BYTES,
};
use sofia_fleet::durability::restore_handle;
use sofia_fleet::protocol::wire as pwire;
use sofia_fleet::{Fleet, FleetError, IngestError, QueryTicket};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Reject frames whose announced body exceeds this many bytes.
    pub max_frame_bytes: usize,
    /// The name this node goes by: the endpoint advertised in a
    /// single-node handshake map, and the name checked against a
    /// [`ServerConfig::cluster`] map's membership. Defaults to the
    /// bound address; set it when clients reach the server through a
    /// different name, e.g. a hostname instead of `0.0.0.0`.
    pub advertise: Option<String>,
    /// The full cluster ownership table to advertise in the handshake
    /// instead of the default single-node map. A node launched from a
    /// cluster spec (`sofia-cli cluster` passes each `serve` process
    /// the whole endpoint list) serves the same multi-endpoint map from
    /// every member, so a [`crate::ClusterClient`] can bootstrap its
    /// routing from any one seed address. The map must contain this
    /// node's advertised name ([`ServerConfig::advertise`], default the
    /// bound address) — advertising a map that never routes here would
    /// strand every stream this node owns, so [`Server::bind_with`]
    /// rejects it. The table is the launch-time spec: this minimal
    /// single-writer coordinator does not push later migrations back
    /// into it (see [`crate::cluster`]).
    pub cluster: Option<ShardMap>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame_bytes: MAX_FRAME_BYTES,
            advertise: None,
            cluster: None,
        }
    }
}

/// What the reader dispatched for one request; the responder settles
/// them in arrival order.
enum Completion {
    /// Reply body already known (ingest, flush, stats, errors, …).
    Ready(String),
    /// A single query in flight on the typed plane.
    Query { id: u64, ticket: QueryTicket },
    /// A staged multi-stream batch (item-level failures already typed).
    Batch {
        id: u64,
        tickets: Vec<Result<QueryTicket, FleetError>>,
    },
}

struct Shared {
    fleet: Fleet,
    map: ShardMap,
    config: ServerConfig,
    /// Tells accept loop and readers to wind down.
    stop: AtomicBool,
    /// Set when a client sent a `shutdown` frame; [`Server::run`] polls it.
    shutdown_requested: AtomicBool,
    /// Socket clones of **live** connections (keyed by connection id),
    /// so shutdown can unblock readers parked in `read`. Each handler
    /// removes its own entry on exit — a long-running server does not
    /// accumulate one fd per past connection.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Connection-id source.
    next_conn: AtomicU64,
}

/// A TCP front end over a running [`Fleet`].
///
/// Dropping a live `Server` winds its threads down and lets the fleet's
/// own `Drop` perform a graceful in-process shutdown; call
/// [`Server::shutdown`] explicitly to observe the final checkpoint
/// count, or [`Server::abort`] for a crash-faithful teardown.
pub struct Server {
    /// `None` only after wind-down (shutdown/abort/drop).
    shared: Option<Arc<Shared>>,
    addr: SocketAddr,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `fleet`. The fleet keeps all its in-process
    /// behaviour — this adds a wire on top.
    pub fn bind(addr: impl ToSocketAddrs, fleet: Fleet) -> io::Result<Server> {
        Server::bind_with(addr, fleet, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit tunables.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        fleet: Fleet,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // A cluster member advertises the spec's full ownership table;
        // a standalone server advertises itself as the owner of every
        // route.
        let advertised = config.advertise.clone().unwrap_or_else(|| addr.to_string());
        let map = match config.cluster.clone() {
            Some(map) => {
                // A map that never routes to this node would strand its
                // streams behind wrong addresses on every bootstrapped
                // client; refuse at the API boundary.
                if !map.distinct_endpoints().contains(&advertised.as_str()) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "cluster map does not contain this node's advertised \
                             address `{advertised}` (set ServerConfig::advertise \
                             when it differs from the bound address)"
                        ),
                    ));
                }
                map
            }
            None => ShardMap::single_node(advertised, fleet.shards()),
        };
        let shared = Arc::new(Shared {
            fleet,
            map,
            config,
            stop: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("sofia-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(Server {
            shared: Some(shared),
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The ownership table clients receive at handshake.
    pub fn shard_map(&self) -> ShardMap {
        self.shared().map.clone()
    }

    /// Whether a client has asked the server to shut down.
    pub fn shutdown_requested(&self) -> bool {
        self.shared().shutdown_requested.load(Ordering::Acquire)
    }

    fn shared(&self) -> &Shared {
        self.shared
            .as_ref()
            .expect("server is live until wind-down")
    }

    /// Serves until a client sends a `shutdown` frame, then drains and
    /// exits gracefully. Returns the number of final checkpoints
    /// written.
    pub fn run(self) -> Result<usize, FleetError> {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.shutdown()
    }

    /// Graceful shutdown: stop accepting, half-close every connection
    /// (queued replies still go out), join all threads, then shut the
    /// fleet down (drains queues, writes final checkpoints). Returns
    /// the checkpoint count.
    pub fn shutdown(mut self) -> Result<usize, FleetError> {
        match self.wind_down(Shutdown::Read) {
            Some(shared) => shared.fleet.shutdown(),
            // Unreachable from public API (wind-down runs once); kept
            // typed rather than panicking.
            None => Err(FleetError::ShuttingDown),
        }
    }

    /// Crash-faithful teardown: connections torn down both ways, the
    /// fleet aborted with **no** final checkpoints — on-disk state is
    /// exactly what the periodic policy made durable, as after a real
    /// crash. Exists so crash recovery can be tested over the wire.
    pub fn abort(mut self) {
        if let Some(shared) = self.wind_down(Shutdown::Both) {
            shared.fleet.abort();
        }
    }

    /// Stops threads and returns exclusive ownership of the shared
    /// state (all other `Arc` holders have exited). `None` if wind-down
    /// already ran.
    fn wind_down(&mut self, how: Shutdown) -> Option<Shared> {
        let accept = self.accept.take()?;
        let shared = self.shared.take().expect("shared present with accept");
        shared.stop.store(true, Ordering::Release);
        let handlers = accept.join().expect("accept thread never panics");
        for conn in shared.conns.lock().expect("conns lock").values() {
            // Unblocks the reader; with `Shutdown::Read` the responder
            // still drains its queue out the write half first.
            let _ = conn.shutdown(how);
        }
        for h in handlers {
            let _ = h.join();
        }
        // With every thread joined this is the last holder; if it ever
        // is not, the Arc's own drop still shuts the fleet down
        // gracefully.
        Arc::try_unwrap(shared).ok()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort wind-down when the caller never called
        // `shutdown()`: stop the threads, then let the fleet's Drop
        // (running as the Arc releases) do its graceful in-process
        // shutdown. Errors are unreportable here.
        let _ = self.wind_down(Shutdown::Read);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::Acquire) {
        // Reap finished handlers so a long-running server does not grow
        // a join handle per past connection (finished threads drop
        // cleanly without a join).
        handlers.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, peer)) => {
                // The registry clone is what lets shutdown unblock this
                // connection's reader; a connection we cannot register
                // we also must not serve (it would be un-wind-downable).
                let Ok(registered) = stream.try_clone() else {
                    continue;
                };
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                shared
                    .conns
                    .lock()
                    .expect("conns lock")
                    .insert(conn_id, registered);
                let conn_shared = Arc::clone(&shared);
                let h = std::thread::Builder::new()
                    .name(format!("sofia-net-conn-{peer}"))
                    .spawn(move || serve_conn(stream, conn_shared, conn_id))
                    .expect("spawn connection handler");
                handlers.push(h);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    handlers
}

/// One connection: runs the frame loop, then — on every exit path —
/// closes the socket and removes the connection's registry entry, so
/// the peer sees EOF and the server does not retain the fd.
fn serve_conn(stream: TcpStream, shared: Arc<Shared>, conn_id: u64) {
    conn_loop(stream, &shared);
    if let Some(conn) = shared.conns.lock().expect("conns lock").remove(&conn_id) {
        // The registered clone shares the underlying socket; shutting
        // it down closes the connection regardless of which halves the
        // loop dropped.
        let _ = conn.shutdown(Shutdown::Both);
    }
}

/// The frame loop: read, dispatch, hand completions to the responder;
/// the responder is joined before returning so replies flush first.
fn conn_loop(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    // Accepted sockets do not inherit the listener's non-blocking mode
    // portably; pin the mode we rely on.
    let _ = stream.set_nonblocking(false);
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let (tx, rx) = mpsc::channel::<Completion>();
    let responder = std::thread::Builder::new()
        .name("sofia-net-responder".into())
        .spawn(move || responder_loop(writer, rx))
        .expect("spawn responder");

    let max = shared.config.max_frame_bytes;
    // Handshake: the first frame must be `hello`; the reply carries the
    // shard map.
    let handshook = match read_frame(&mut reader, max) {
        Ok(Some(body)) => match Request::from_body(&body) {
            Ok(Request::Hello { client: _ }) => {
                let _ = tx.send(Completion::Ready(ok_body(0, |out| {
                    shared.map.push_wire(out)
                })));
                true
            }
            _ => {
                let _ = tx.send(Completion::Ready(err_body(
                    0,
                    &FleetError::InvalidQuery {
                        reason: "handshake must be a `hello` frame".to_string(),
                    },
                )));
                false
            }
        },
        _ => false,
    };

    if handshook {
        while !shared.stop.load(Ordering::Acquire) {
            let body = match read_frame(&mut reader, max) {
                Ok(Some(body)) => body,
                Ok(None) => break, // client hung up between frames
                Err(FrameError::Io(_)) | Err(FrameError::Truncated) => break,
                Err(e) => {
                    // A peer off-protocol (oversized/garbage frame): one
                    // typed reply, then close — the byte stream can no
                    // longer be trusted to be frame-aligned.
                    let _ = tx.send(Completion::Ready(err_body(
                        0,
                        &FleetError::InvalidQuery {
                            reason: e.to_string(),
                        },
                    )));
                    break;
                }
            };
            match Request::from_body(&body) {
                Ok(req) => {
                    let keep_going = dispatch(req, shared, &tx);
                    if !keep_going {
                        break;
                    }
                }
                Err(e) => {
                    // The frame was well-formed, so the stream is still
                    // aligned: report and keep serving.
                    let _ = tx.send(Completion::Ready(err_body(
                        0,
                        &FleetError::InvalidQuery {
                            reason: e.to_string(),
                        },
                    )));
                }
            }
        }
    }
    drop(tx);
    let _ = responder.join();
}

/// Executes one request against the fleet; `false` ends the connection
/// (after the queued reply goes out).
fn dispatch(req: Request, shared: &Shared, tx: &mpsc::Sender<Completion>) -> bool {
    let fleet = &shared.fleet;
    match req {
        Request::Hello { .. } => {
            // A second handshake is a protocol error; answer and close.
            let _ = tx.send(Completion::Ready(err_body(
                0,
                &FleetError::InvalidQuery {
                    reason: "duplicate `hello`".to_string(),
                },
            )));
            false
        }
        Request::Query { id, stream, query } => {
            let completion = match fleet.query(&stream, query) {
                Ok(ticket) => Completion::Query { id, ticket },
                Err(e) => Completion::Ready(err_body(id, &e)),
            };
            let _ = tx.send(completion);
            true
        }
        Request::QueryBatch { id, items } => {
            let refs: Vec<(&str, sofia_fleet::Query)> =
                items.iter().map(|(s, q)| (s.as_str(), q.clone())).collect();
            let completion = match fleet.query_batch_tickets(&refs) {
                Ok(tickets) => Completion::Batch { id, tickets },
                Err(e) => Completion::Ready(err_body(id, &e)),
            };
            let _ = tx.send(completion);
            true
        }
        Request::Register {
            id,
            stream,
            envelope,
        } => {
            let registered = restore_handle(&stream, &envelope)
                .and_then(|handle| fleet.register(&stream, handle));
            let body = match registered {
                // Persist the arrival before acknowledging, and tell
                // the client whether that happened: a migration
                // coordinator deletes the source's checkpoint on this
                // reply, so it must know if this fleet persisted
                // nothing (no checkpoint policy / transient model). A
                // failed write undoes the registration — better a typed
                // error (and an aborted migration) than a stream whose
                // only durable copy is about to be removed.
                Ok(_key) => match fleet.checkpoint_stream(&stream) {
                    Ok(durable) => ok_body(id, |out| {
                        use std::fmt::Write as _;
                        let _ = writeln!(out, "durable {durable}");
                    }),
                    Err(e) => {
                        let _ = fleet.deregister(&stream);
                        err_body(id, &e)
                    }
                },
                Err(e) => err_body(id, &e),
            };
            let _ = tx.send(Completion::Ready(body));
            true
        }
        Request::Ingest { id, stream, slices } => {
            // Slices apply in seq order. The first backpressure stops
            // the batch — applying later slices would reorder the
            // stream — and every unapplied seq is handed back, exactly
            // the information `try_ingest`'s slice hand-back carries
            // in-process (the client still holds the slices).
            let mut accepted = 0u64;
            let mut rejected: Vec<u64> = Vec::new();
            let mut failure: Option<FleetError> = None;
            let mut pending = slices.into_iter();
            for (seq, slice) in pending.by_ref() {
                match fleet.try_ingest_id(&stream, slice) {
                    Ok(()) => accepted += 1,
                    Err(IngestError::Backpressure(_returned)) => {
                        rejected.push(seq);
                        break;
                    }
                    Err(IngestError::UnknownStream(s)) => {
                        failure = Some(FleetError::UnknownStream(s));
                        break;
                    }
                    Err(IngestError::ShuttingDown) => {
                        failure = Some(FleetError::ShuttingDown);
                        break;
                    }
                }
            }
            let body = match failure {
                Some(e) => err_body(id, &e),
                None => {
                    rejected.extend(pending.map(|(seq, _)| seq));
                    ok_body(id, |out| {
                        use std::fmt::Write as _;
                        let _ = writeln!(out, "accepted {accepted}");
                        out.push_str("backpressure");
                        for seq in &rejected {
                            let _ = write!(out, " {seq}");
                        }
                        out.push('\n');
                    })
                }
            };
            let _ = tx.send(Completion::Ready(body));
            true
        }
        Request::Snapshot { id, stream } => {
            // The reply payload IS the checkpoint envelope — exactly
            // what a `register` frame on another server accepts, so
            // snapshot → register → deregister moves a stream.
            let body = match fleet.export_stream(&stream) {
                Ok(envelope) => ok_body(id, |out| out.push_str(&envelope)),
                Err(e) => err_body(id, &e),
            };
            let _ = tx.send(Completion::Ready(body));
            true
        }
        Request::Deregister { id, stream } => {
            let body = match fleet.deregister(&stream) {
                Ok(()) => ok_body(id, |_| {}),
                Err(e) => err_body(id, &e),
            };
            let _ = tx.send(Completion::Ready(body));
            true
        }
        Request::Flush { id } => {
            let body = match fleet.flush() {
                Ok(()) => ok_body(id, |_| {}),
                Err(e) => err_body(id, &e),
            };
            let _ = tx.send(Completion::Ready(body));
            true
        }
        Request::Stats { id } => {
            let body = match fleet.fleet_stats() {
                Ok(stats) => ok_body(id, |out| push_fleet_stats(out, &stats)),
                Err(e) => err_body(id, &e),
            };
            let _ = tx.send(Completion::Ready(body));
            true
        }
        Request::Shutdown { id } => {
            shared.shutdown_requested.store(true, Ordering::Release);
            let _ = tx.send(Completion::Ready(ok_body(id, |_| {})));
            // Close this connection; `Server::run` drives the rest.
            false
        }
    }
}

/// Settles completions in request order and writes the reply frames.
fn responder_loop(mut writer: TcpStream, rx: mpsc::Receiver<Completion>) {
    while let Ok(completion) = rx.recv() {
        let body = match completion {
            Completion::Ready(body) => body,
            Completion::Query { id, ticket } => match ticket.wait() {
                Ok(resp) => ok_body(id, |out| pwire::push_response(out, &resp)),
                Err(e) => err_body(id, &e),
            },
            Completion::Batch { id, tickets } => {
                let results: Vec<Result<sofia_fleet::QueryResponse, FleetError>> = tickets
                    .into_iter()
                    .map(|t| t.and_then(QueryTicket::wait))
                    .collect();
                ok_body(id, |out| {
                    use std::fmt::Write as _;
                    let _ = writeln!(out, "results {}", results.len());
                    for r in &results {
                        match r {
                            Ok(resp) => {
                                out.push_str("item ok\n");
                                pwire::push_response(out, resp);
                            }
                            Err(e) => {
                                let _ = writeln!(out, "item err {}", e.to_wire());
                            }
                        }
                    }
                })
            }
        };
        if write_frame(&mut writer, &body).is_err() {
            // The peer is gone; keep settling tickets (dropping them
            // would be fine too — the shard reply channel tolerates a
            // dropped receiver) but stop writing.
            break;
        }
    }
}
