//! Environmental-sensor imputation — the Intel Lab scenario.
//!
//! Streams the Intel Lab Sensor proxy (54 positions × 4 sensors at
//! 10-minute granularity, daily seasonality), drops 50% of readings
//! (network loss) and corrupts 20% with ±4·max spikes (sensor faults),
//! then compares online imputation quality of SOFIA against OLSTEC and
//! OnlineSGD — a one-cell rendering of Figure 3.
//!
//! Run with:
//! ```sh
//! cargo run --release --example sensor_imputation
//! ```

use sofia::baselines::{Olstec, OnlineSgd};
use sofia::core::model::Sofia;
use sofia::datagen::corrupt::{CorruptionConfig, Corruptor};
use sofia::datagen::datasets::Dataset;
use sofia::datagen::stream::TensorStream;
use sofia::{SofiaConfig, StreamingFactorizer};

fn main() {
    let dataset = Dataset::IntelLab;
    let stream = dataset.scaled_stream(0.5, 5);
    let m = stream.period();
    println!(
        "Intel Lab proxy: {} (positions × sensors), daily period {m}",
        stream.slice_shape()
    );

    let setting = CorruptionConfig::from_percents(50, 20, 4.0);
    let corruptor = Corruptor::new(setting, stream.max_abs_over_season(), 17);
    println!(
        "corruption: {} (missing%, outlier%, magnitude)",
        setting.label()
    );

    let rank = dataset.paper_rank();
    let startup: Vec<_> = (0..3 * m)
        .map(|t| corruptor.corrupt(&stream.clean_slice(t), t))
        .collect();

    let config = SofiaConfig::new(rank, m)
        .with_lambdas(0.01, 0.01, 10.0)
        .with_als_limits(1e-4, 1, 150);
    let mut methods: Vec<Box<dyn StreamingFactorizer>> = vec![
        Box::new(Sofia::init(&config, &startup, 3).expect("init")),
        Box::new(Olstec::init(&startup, rank, 0.9, 3)),
        Box::new(OnlineSgd::init(&startup, rank, 0.1, 3)),
    ];

    let t_end = 3 * m + m; // stream one more day
    let mut totals = vec![0.0f64; methods.len()];
    for t in 3 * m..t_end {
        let clean = stream.clean_slice(t);
        let observed = corruptor.corrupt(&clean, t);
        for (total, method) in totals.iter_mut().zip(methods.iter_mut()) {
            let out = method.step(&observed);
            *total += (&out.completed - &clean).frobenius_norm() / clean.frobenius_norm();
        }
    }

    let steps = (t_end - 3 * m) as f64;
    println!("\nrunning average imputation error over one day:");
    for (total, method) in totals.iter().zip(&methods) {
        println!("  {:10} RAE = {:.3}", method.name(), total / steps);
    }
    let sofia_rae = totals[0] / steps;
    let best_other = totals[1..].iter().cloned().fold(f64::INFINITY, f64::min) / steps;
    println!(
        "\nSOFIA vs best competitor: {:+.0}% error",
        100.0 * (1.0 - sofia_rae / best_other)
    );
}
