//! Per-connection state machines of the evented server: an incremental
//! frame decoder, a bounded write buffer with backpressure, and
//! in-order settlement of pipelined completions — everything one
//! connection owns between readiness events.
//!
//! The old server gave each connection two blocking threads (reader +
//! responder); here a connection is plain state driven by whichever
//! event-loop thread owns it. The contracts it upholds are the wire
//! contracts PR 4 pinned:
//!
//! * **Frames are byte-stream-safe.** `#<len>\n<body>` frames may be
//!   split at any byte boundary (one byte per segment is legal);
//!   [`FrameDecoder`] carries partial frames across reads and yields
//!   bodies only when complete.
//! * **Replies settle strictly in request order.** Completions queue in
//!   arrival order; only the front may settle, even when a later
//!   query's ticket resolves first.
//! * **Write buffering is bounded.** Once a connection's outgoing
//!   buffer crosses the configured high-water mark the server stops
//!   reading from it (and stops settling replies into it) until the
//!   peer drains — a slow reader backpressures itself, never the
//!   server's memory.
//! * **Reply serialization reuses per-connection scratch.** Settling a
//!   query reply encodes into the connection's scratch `String` and
//!   appends the frame straight into the write buffer — no fresh
//!   allocation per settled frame on the hot path.

use crate::server::{dispatch, Shared};
use crate::stats::SlowRequest;
use crate::wire::{err_body, ok_body, FrameError};
use sofia_fleet::protocol::wire as pwire;
use sofia_fleet::{FleetError, QueryResponse, QueryTicket};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{self, Read as _, Write as _};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Longest accepted `#<len>` frame header (shared with the blocking
/// reader in [`crate::wire`]).
use crate::wire::MAX_HEADER_BYTES;

/// Bytes read from one connection per pump pass — the fairness quantum.
/// A firehose sender gets this much service, then the loop moves on;
/// level-triggered readiness brings the connection straight back.
const READ_BUDGET: usize = 64 * 1024;

/// Upper bound on queued (unsettled) completions per connection. A peer
/// that pipelines past it stops being read until replies drain —
/// the request-side twin of the write buffer's byte bound.
const MAX_PENDING_REPLIES: usize = 1024;

/// Shrink-back threshold for per-connection buffers: one burst (a big
/// snapshot envelope, a flood of pipelined frames) must not pin its
/// peak allocation for the connection's lifetime.
const BUF_SHRINK_BYTES: usize = 1 << 20;

/// Incremental decoder for `#<len>\n<body>` frames: bytes go in as they
/// arrive, complete bodies come out; partial frames (header or body cut
/// at any byte) simply wait for more input.
#[derive(Default)]
pub(crate) struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// Appends freshly read bytes.
    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether any partial frame is buffered (EOF now would be
    /// [`FrameError::Truncated`] rather than a clean close).
    #[cfg(test)]
    pub(crate) fn is_mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// The buffered bytes; index with the range [`FrameDecoder::peek`]
    /// returned.
    pub(crate) fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// If a complete frame is buffered, its body's byte range.
    /// `Ok(None)` means "need more bytes"; errors mean the byte stream
    /// is off-protocol and cannot be trusted to be frame-aligned again.
    pub(crate) fn peek(&self, max: usize) -> Result<Option<(usize, usize)>, FrameError> {
        let probe = &self.buf[..self.buf.len().min(MAX_HEADER_BYTES + 1)];
        let hdr_end = match probe.iter().position(|&b| b == b'\n') {
            Some(i) => i,
            None if self.buf.len() > MAX_HEADER_BYTES => {
                return Err(FrameError::BadHeader(
                    String::from_utf8_lossy(probe).into_owned(),
                ));
            }
            None => return Ok(None),
        };
        let text = std::str::from_utf8(&self.buf[..hdr_end]).map_err(|_| FrameError::NotUtf8)?;
        let len: usize = text
            .strip_prefix('#')
            .and_then(|d| d.parse().ok())
            .ok_or_else(|| FrameError::BadHeader(text.to_string()))?;
        if len > max {
            return Err(FrameError::Oversized { len, max });
        }
        let start = hdr_end + 1;
        if self.buf.len() < start + len {
            return Ok(None);
        }
        Ok(Some((start, start + len)))
    }

    /// Discards everything up to `end` (a consumed frame), keeping the
    /// following bytes — the start of the next frame, wherever the last
    /// read happened to cut it.
    pub(crate) fn consume(&mut self, end: usize) {
        self.buf.copy_within(end.., 0);
        self.buf.truncate(self.buf.len() - end);
        if self.buf.is_empty() && self.buf.capacity() > BUF_SHRINK_BYTES {
            self.buf.shrink_to(READ_BUDGET);
        }
    }
}

/// Outgoing bytes with a consumed-prefix cursor, so partial socket
/// writes don't memmove the remainder on every call.
#[derive(Default)]
struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    /// Appends one `#<len>\n<body>` frame (header written straight into
    /// the buffer — no intermediate allocation).
    fn append_frame(&mut self, body: &str) {
        let _ = writeln!(self.buf, "#{}", body.len());
        self.buf.extend_from_slice(body.as_bytes());
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn pending_len(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
        debug_assert!(self.pos <= self.buf.len());
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            if self.buf.capacity() > BUF_SHRINK_BYTES {
                self.buf.shrink_to(READ_BUDGET);
            }
        } else if self.pos >= READ_BUDGET && self.pos * 2 >= self.buf.len() {
            self.buf.copy_within(self.pos.., 0);
            let len = self.buf.len() - self.pos;
            self.buf.truncate(len);
            self.pos = 0;
        }
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }
}

/// What the dispatcher produced for one request; settled strictly in
/// arrival order.
pub(crate) enum Completion {
    /// Reply body already known (ingest, flush, stats, errors, …).
    Ready(String),
    /// A single query in flight on the typed plane.
    Query {
        /// Echoed request id.
        id: u64,
        /// The unsettled in-process handle, polled with `try_take`.
        ticket: QueryTicket,
    },
    /// A staged multi-stream batch; the reply needs every slot.
    Batch {
        /// Echoed request id.
        id: u64,
        /// One slot per item, each settling independently.
        slots: Vec<BatchSlot>,
    },
}

/// One item of a staged batch: still in flight, or resolved (item-level
/// failures arrive resolved).
// `Done` dwarfs `Pending`, but the slots are written in place inside an
// already-sized Vec and die as soon as the batch serializes; boxing
// would buy nothing except an allocation per settled item.
#[allow(clippy::large_enum_variant)]
pub(crate) enum BatchSlot {
    /// Ticket not yet answered by its shard.
    Pending(QueryTicket),
    /// Answered (or failed at staging); held until the whole batch is.
    Done(Result<QueryResponse, FleetError>),
}

/// Per-request observability carried alongside a queued [`Completion`]:
/// when the complete frame was decoded (the wire-to-settle clock), the
/// verb, and the stream the request addressed — the stream `String` is
/// **moved** out of the parsed request, never cloned, so metadata costs
/// the steady-state path no allocation.
pub(crate) struct ReqMeta {
    /// When the request's complete frame came off the decoder.
    pub(crate) arrived: Instant,
    /// The request verb (or `error` for protocol-fault replies).
    pub(crate) verb: &'static str,
    /// The stream the request addressed, when it addressed one.
    pub(crate) stream: Option<String>,
}

/// What one [`Conn::pump`] pass left behind, so the event loop can pick
/// its poll timeout and know whether to come straight back.
pub(crate) struct PumpOutcome {
    /// The read budget ran out with the socket still hot — re-pump
    /// before sleeping.
    pub(crate) read_hungry: bool,
    /// The front completion is blocked on an unsettled ticket — poll
    /// again soon (tickets resolve off-loop, nothing wakes the poller).
    pub(crate) ticket_blocked: bool,
}

/// One live connection: socket, decoder, completion queue, write
/// buffer, and the scratch reply string reused across settlements.
pub(crate) struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    pending: VecDeque<(Completion, ReqMeta)>,
    write: WriteBuf,
    scratch: String,
    /// Level-triggered readiness hint; starts true (bytes may predate
    /// the first poll registration).
    readable: bool,
    handshook: bool,
    /// No more requests will be read: EOF, protocol fault, a `shutdown`
    /// frame, or server drain. Queued replies still go out.
    read_closed: bool,
    /// The write side failed; nothing further can reach the peer, so
    /// queued work is dropped and the connection is finished.
    peer_gone: bool,
    /// Index of the event-loop worker that owns this connection (which
    /// settle-latency summary slot to observe into).
    worker: usize,
    /// Server-unique id, so slow-request records attribute to a socket.
    conn_id: u64,
    /// This connection's own write-buffer peak; the shared high-water
    /// counter is only touched when this grows (bounded publishes per
    /// connection instead of one atomic per settled frame).
    write_highwater: u64,
    /// Whether the read interest is currently dropped for backpressure
    /// (edge detection for the `read-interest-drops` counter).
    read_suppressed: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, worker: usize, conn_id: u64) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::default(),
            pending: VecDeque::new(),
            write: WriteBuf::default(),
            scratch: String::new(),
            readable: true,
            handshook: false,
            read_closed: false,
            peer_gone: false,
            worker,
            conn_id,
            write_highwater: 0,
            read_suppressed: false,
        }
    }

    /// A poll event reported this connection ready.
    pub(crate) fn on_event(&mut self, readable: bool) {
        if readable {
            self.readable = true;
        }
    }

    /// Whether the loop should read from this socket: not draining, and
    /// neither the write buffer nor the completion queue is over its
    /// bound (the backpressure contract: a peer outrunning its replies
    /// stops being read, never buffers unboundedly).
    pub(crate) fn wants_read(&self, shared: &Shared) -> bool {
        !self.read_closed
            && self.write.pending_len() < shared.config.write_buffer_bytes
            && self.pending.len() < MAX_PENDING_REPLIES
    }

    /// Whether the socket should be polled for writability (bytes are
    /// queued that a previous write could not flush).
    pub(crate) fn wants_write(&self) -> bool {
        !self.peer_gone && self.write.pending_len() > 0
    }

    /// Edge-detects the backpressure transition for the
    /// `read-interest-drops` counter: returns `true` exactly when a
    /// still-open connection's read interest was *just* dropped
    /// (write buffer or completion queue over its bound).
    pub(crate) fn note_read_interest(&mut self, wants_read: bool) -> bool {
        let suppressed = !wants_read && !self.read_closed;
        let newly = suppressed && !self.read_suppressed;
        self.read_suppressed = suppressed;
        newly
    }

    /// Stop reading (server drain): queued replies still settle and
    /// flush, then the connection finishes.
    pub(crate) fn begin_drain(&mut self) {
        self.read_closed = true;
    }

    /// Nothing left to do: torn down by the loop.
    pub(crate) fn finished(&self) -> bool {
        self.peer_gone
            || (self.read_closed && self.pending.is_empty() && self.write.pending_len() == 0)
    }

    /// Closes the socket both ways (the peer sees EOF / reset).
    pub(crate) fn teardown(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// One service pass: decode + dispatch buffered frames, read the
    /// socket (budget-bounded), settle what the front of the queue
    /// allows, flush. Everything a connection does happens here.
    pub(crate) fn pump(&mut self, shared: &Shared, buf: &mut [u8]) -> PumpOutcome {
        self.drain_frames(shared);
        let mut budget = READ_BUDGET;
        while self.readable && self.wants_read(shared) && budget > 0 {
            match self.stream.read(buf) {
                Ok(0) => {
                    // Clean EOF between frames is the normal hang-up;
                    // EOF mid-frame is a truncation — either way the
                    // read side is done (a truncated frame gets no
                    // reply, matching the blocking server).
                    self.read_closed = true;
                    self.readable = false;
                    break;
                }
                Ok(n) => {
                    budget = budget.saturating_sub(n);
                    self.decoder.extend(&buf[..n]);
                    self.drain_frames(shared);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.readable = false;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.read_closed = true;
                    self.readable = false;
                    break;
                }
            }
        }
        let ticket_blocked = self.settle(shared);
        self.flush();
        PumpOutcome {
            read_hungry: self.readable && self.wants_read(shared),
            ticket_blocked,
        }
    }

    /// Re-settle and flush without touching the socket's read side —
    /// the ticket-polling half of [`Conn::pump`], cheap enough to spin.
    pub(crate) fn settle_and_flush(&mut self, shared: &Shared) -> bool {
        let ticket_blocked = self.settle(shared);
        self.flush();
        ticket_blocked
    }

    /// Decodes every complete buffered frame the bounds allow and
    /// dispatches it, queueing one completion per request.
    fn drain_frames(&mut self, shared: &Shared) {
        while !self.read_closed
            && self.pending.len() < MAX_PENDING_REPLIES
            && self.write.pending_len() < shared.config.write_buffer_bytes
        {
            let (start, end) = match self.decoder.peek(shared.config.max_frame_bytes) {
                Ok(Some(range)) => range,
                Ok(None) => break,
                Err(e) => {
                    // Off-protocol peer (oversized/garbage frame): one
                    // typed reply if the handshake happened, then stop
                    // reading — the stream is no longer frame-aligned.
                    shared.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                    if self.handshook {
                        self.push_ready(
                            err_body(
                                0,
                                &FleetError::InvalidQuery {
                                    reason: e.to_string(),
                                },
                            ),
                            "error",
                        );
                    }
                    self.read_closed = true;
                    break;
                }
            };
            // The wire-to-settle clock starts the instant a complete
            // frame comes off the decoder.
            let arrived = Instant::now();
            let parsed = match std::str::from_utf8(&self.decoder.bytes()[start..end]) {
                Ok(body) => crate::wire::Request::from_body(body),
                Err(_) => {
                    self.decoder.consume(end);
                    shared.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                    if self.handshook {
                        self.push_ready(
                            err_body(
                                0,
                                &FleetError::InvalidQuery {
                                    reason: FrameError::NotUtf8.to_string(),
                                },
                            ),
                            "error",
                        );
                    }
                    self.read_closed = true;
                    break;
                }
            };
            self.decoder.consume(end);
            shared
                .metrics
                .frames_decoded
                .fetch_add(1, Ordering::Relaxed);
            match parsed {
                Ok(crate::wire::Request::Hello { .. }) if !self.handshook => {
                    self.handshook = true;
                    self.push_ready(
                        ok_body(0, |out| shared.map.read().expect("map lock").push_wire(out)),
                        "hello",
                    );
                }
                Ok(_) | Err(_) if !self.handshook => {
                    // First frame was well-formed but not a `hello`.
                    self.push_ready(
                        err_body(
                            0,
                            &FleetError::InvalidQuery {
                                reason: "handshake must be a `hello` frame".to_string(),
                            },
                        ),
                        "error",
                    );
                    self.read_closed = true;
                }
                Ok(req) => {
                    let verb = req.verb();
                    let (completion, stream, keep_going) = dispatch(req, shared);
                    self.pending.push_back((
                        completion,
                        ReqMeta {
                            arrived,
                            verb,
                            stream,
                        },
                    ));
                    if !keep_going {
                        self.read_closed = true;
                    }
                }
                Err(e) => {
                    // The frame was well-formed, so the stream is still
                    // aligned: report and keep serving (the malformed
                    // body still counts as a decode error).
                    shared.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.push_ready(
                        err_body(
                            0,
                            &FleetError::InvalidQuery {
                                reason: e.to_string(),
                            },
                        ),
                        "error",
                    );
                }
            }
        }
    }

    fn push_ready(&mut self, body: String, verb: &'static str) {
        self.pending.push_back((
            Completion::Ready(body),
            ReqMeta {
                arrived: Instant::now(),
                verb,
                stream: None,
            },
        ));
    }

    /// Settles completions **from the front only** (replies are in
    /// request order) while the write buffer has room. Returns whether
    /// the front is blocked on an in-flight ticket.
    fn settle(&mut self, shared: &Shared) -> bool {
        loop {
            if self.peer_gone {
                // Nothing can reach the peer; drop queued work (the
                // shard reply channels tolerate dropped receivers).
                self.pending.clear();
                self.write.clear();
                return false;
            }
            if self.write.pending_len() >= shared.config.write_buffer_bytes {
                return false;
            }
            let Some((front, _)) = self.pending.front_mut() else {
                return false;
            };
            match front {
                Completion::Ready(_) => {
                    let Some((Completion::Ready(body), meta)) = self.pending.pop_front() else {
                        unreachable!("front was Ready");
                    };
                    self.write.append_frame(&body);
                    self.observe_settled(shared, meta);
                }
                Completion::Query { id, ticket } => {
                    let Some(result) = ticket.try_take() else {
                        return true;
                    };
                    let id = *id;
                    self.scratch.clear();
                    let _ = writeln!(self.scratch, "ok {id}");
                    match result {
                        Ok(resp) => pwire::push_response(&mut self.scratch, &resp),
                        Err(e) => {
                            self.scratch.clear();
                            let _ = writeln!(self.scratch, "err {id} {}", e.to_wire());
                        }
                    }
                    self.write.append_frame(&self.scratch);
                    let (_, meta) = self.pending.pop_front().expect("front was Query");
                    self.observe_settled(shared, meta);
                }
                Completion::Batch { id, slots } => {
                    let mut all_done = true;
                    for slot in slots.iter_mut() {
                        if let BatchSlot::Pending(ticket) = slot {
                            match ticket.try_take() {
                                Some(result) => *slot = BatchSlot::Done(result),
                                None => all_done = false,
                            }
                        }
                    }
                    if !all_done {
                        return true;
                    }
                    let id = *id;
                    self.scratch.clear();
                    let _ = write!(self.scratch, "ok {id}\nresults {}\n", slots.len());
                    for slot in slots.iter() {
                        match slot {
                            BatchSlot::Done(Ok(resp)) => {
                                self.scratch.push_str("item ok\n");
                                pwire::push_response(&mut self.scratch, resp);
                            }
                            BatchSlot::Done(Err(e)) => {
                                let _ = writeln!(self.scratch, "item err {}", e.to_wire());
                            }
                            BatchSlot::Pending(_) => unreachable!("all slots done"),
                        }
                    }
                    self.write.append_frame(&self.scratch);
                    let (_, meta) = self.pending.pop_front().expect("front was Batch");
                    self.observe_settled(shared, meta);
                }
            }
        }
    }

    /// A reply's bytes just entered the write buffer: stop the
    /// wire-to-settle clock, observe the latency into this worker's
    /// summary slot, update the write-buffer high-water mark (shared
    /// counter touched only when this connection's own peak grows), and
    /// capture a slow-request record when the threshold says so — the
    /// only branch that allocates, and only for requests already past
    /// the latency threshold.
    fn observe_settled(&mut self, shared: &Shared, meta: ReqMeta) {
        let elapsed = meta.arrived.elapsed();
        let latency_us = elapsed.as_micros() as u64;
        shared
            .metrics
            .observe_settle(self.worker, elapsed.as_secs_f64() * 1e6);
        let depth = self.write.pending_len() as u64;
        if depth > self.write_highwater {
            self.write_highwater = depth;
            shared
                .metrics
                .write_buffer_highwater
                .fetch_max(depth, Ordering::Relaxed);
        }
        if latency_us >= shared.metrics.slow_threshold_us {
            shared.metrics.record_slow(SlowRequest {
                verb: meta.verb.to_string(),
                stream: meta.stream,
                conn: self.conn_id,
                latency_us,
            });
        }
    }

    /// Writes queued bytes until the socket would block.
    fn flush(&mut self) {
        while self.write.pending_len() > 0 && !self.peer_gone {
            match self.stream.write(self.write.pending()) {
                Ok(0) => self.peer_gone = true,
                Ok(n) => self.write.advance(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => self.peer_gone = true,
            }
        }
    }

    /// The socket, for poll registration.
    pub(crate) fn socket(&self) -> &TcpStream {
        &self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_handles_split_and_coalesced_frames() {
        let mut dec = FrameDecoder::default();
        // Two frames arriving one byte at a time.
        let wire = b"#5\nhello#3\nab\n";
        let mut seen = Vec::new();
        for &b in wire.iter() {
            dec.extend(&[b]);
            while let Some((s, e)) = dec.peek(1024).unwrap() {
                seen.push(String::from_utf8(dec.bytes()[s..e].to_vec()).unwrap());
                dec.consume(e);
            }
        }
        assert_eq!(seen, vec!["hello".to_string(), "ab\n".to_string()]);
        assert!(!dec.is_mid_frame());

        // Both frames in one push.
        dec.extend(b"#2\nxy#0\n");
        let (s, e) = dec.peek(1024).unwrap().unwrap();
        assert_eq!(&dec.bytes()[s..e], b"xy");
        dec.consume(e);
        let (s, e) = dec.peek(1024).unwrap().unwrap();
        assert_eq!(s, e, "empty body");
        dec.consume(e);
        assert!(dec.peek(1024).unwrap().is_none());
    }

    #[test]
    fn decoder_rejects_oversized_and_garbage_headers() {
        let mut dec = FrameDecoder::default();
        dec.extend(b"#100\nxx");
        assert!(matches!(
            dec.peek(10),
            Err(FrameError::Oversized { len: 100, max: 10 })
        ));

        let mut dec = FrameDecoder::default();
        dec.extend(b"nope\n");
        assert!(matches!(dec.peek(10), Err(FrameError::BadHeader(_))));

        // A header that never terminates is rejected once it cannot
        // possibly be valid, not buffered forever.
        let mut dec = FrameDecoder::default();
        dec.extend(&[b'#'; MAX_HEADER_BYTES + 2]);
        assert!(matches!(dec.peek(1024), Err(FrameError::BadHeader(_))));
    }

    #[test]
    fn decoder_waits_for_partial_headers_and_bodies() {
        let mut dec = FrameDecoder::default();
        dec.extend(b"#1");
        assert!(dec.peek(1024).unwrap().is_none());
        assert!(dec.is_mid_frame());
        dec.extend(b"0\n12345");
        assert!(dec.peek(1024).unwrap().is_none(), "body incomplete");
        dec.extend(b"67890");
        let (s, e) = dec.peek(1024).unwrap().unwrap();
        assert_eq!(&dec.bytes()[s..e], b"1234567890");
    }

    #[test]
    fn write_buf_tracks_partial_writes() {
        let mut wb = WriteBuf::default();
        wb.append_frame("abc");
        assert_eq!(wb.pending(), b"#3\nabc");
        wb.advance(2);
        assert_eq!(wb.pending(), b"\nabc");
        wb.append_frame("");
        assert_eq!(wb.pending(), b"\nabc#0\n");
        wb.advance(wb.pending_len());
        assert_eq!(wb.pending_len(), 0);
    }
}
