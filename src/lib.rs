//! # sofia
//!
//! Umbrella crate for the SOFIA reproduction — re-exports the workspace
//! crates under one roof so applications can depend on a single crate:
//!
//! * [`tensor`] — dense N-way tensor algebra ([`sofia_tensor`]);
//! * [`timeseries`] — Holt-Winters forecasting substrate
//!   ([`sofia_timeseries`]);
//! * [`core`] — the SOFIA algorithm itself ([`sofia_core`]);
//! * [`baselines`] — the competitor methods ([`sofia_baselines`]);
//! * [`datagen`] — synthetic workloads and dataset proxies
//!   ([`sofia_datagen`]);
//! * [`eval`] — metrics and streaming evaluation ([`sofia_eval`]);
//! * [`fleet`] — the sharded multi-stream serving engine
//!   ([`sofia_fleet`]);
//! * [`net`] — the TCP data plane over the fleet's typed query
//!   protocol ([`sofia_net`]).
//!
//! See `examples/quickstart.rs` for a five-minute tour,
//! `examples/fleet_serving.rs` for the serving engine, and the repository
//! README for the experiment harnesses.

pub use sofia_baselines as baselines;
pub use sofia_core as core;
pub use sofia_datagen as datagen;
pub use sofia_eval as eval;
pub use sofia_fleet as fleet;
pub use sofia_net as net;
pub use sofia_tensor as tensor;
pub use sofia_timeseries as timeseries;

pub use sofia_core::{Sofia, SofiaConfig, StepOutput, StreamingFactorizer};
pub use sofia_tensor::{DenseTensor, Mask, Matrix, ObservedTensor, Shape};

/// The README's Rust code blocks compile **and run** as doctests, so
/// the quickstart cannot rot silently: `cargo test` fails when a
/// snippet stops compiling or its assertions stop holding. Compiled
/// only under `rustdoc --test` (`cfg(doctest)`), so ordinary builds
/// and `cargo doc` never see this module.
#[cfg(doctest)]
mod readme_doctests {
    #![doc = include_str!("../README.md")]
}
