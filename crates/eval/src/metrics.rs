//! The paper's evaluation metrics (§VI-A).
//!
//! * **NRE** (Normalized Residual Error): `‖X̂_t − X_t‖_F / ‖X_t‖_F` per
//!   step;
//! * **RAE** (Running Average Error): the mean NRE over the stream;
//! * **AFE** (Average Forecasting Error): mean normalized error of
//!   h-step-ahead forecasts over the forecast horizon;
//! * **ART** (Average Running Time): mean per-step processing time,
//!   excluding initialization.

use sofia_tensor::norms::relative_error;
use sofia_tensor::DenseTensor;
use std::time::Duration;

/// Per-step record produced by the streaming runner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// Stream time index `t`.
    pub t: usize,
    /// Normalized residual error at `t`.
    pub nre: f64,
    /// Wall time spent processing the subtensor at `t`.
    pub elapsed: Duration,
}

/// Aggregate over a full stream run.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Method name.
    pub method: String,
    /// Per-step records (excluding initialization).
    pub steps: Vec<StepRecord>,
}

impl StreamSummary {
    /// Running average error: `(1/T)·Σ_t NRE_t`.
    pub fn rae(&self) -> f64 {
        if self.steps.is_empty() {
            return f64::NAN;
        }
        self.steps.iter().map(|s| s.nre).sum::<f64>() / self.steps.len() as f64
    }

    /// Average running time per subtensor, in seconds.
    pub fn art_seconds(&self) -> f64 {
        if self.steps.is_empty() {
            return f64::NAN;
        }
        self.steps
            .iter()
            .map(|s| s.elapsed.as_secs_f64())
            .sum::<f64>()
            / self.steps.len() as f64
    }

    /// Total processing time across the stream, in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| s.elapsed.as_secs_f64())
            .sum::<f64>()
    }

    /// The NRE series (for Fig. 3-style plots).
    pub fn nre_series(&self) -> Vec<(usize, f64)> {
        self.steps.iter().map(|s| (s.t, s.nre)).collect()
    }
}

/// Normalized residual error of one reconstruction (the per-step NRE).
pub fn nre(estimate: &DenseTensor, truth: &DenseTensor) -> f64 {
    relative_error(estimate, truth)
}

/// Average forecasting error over a horizon of `(forecast, truth)` pairs:
/// `(1/t_f)·Σ_h ‖Ŷ_{t+h|t} − X_{t+h}‖_F / ‖X_{t+h}‖_F`.
pub fn afe(pairs: &[(DenseTensor, DenseTensor)]) -> f64 {
    if pairs.is_empty() {
        return f64::NAN;
    }
    pairs
        .iter()
        .map(|(fc, truth)| relative_error(fc, truth))
        .sum::<f64>()
        / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_tensor::Shape;

    fn summary(nres: &[f64]) -> StreamSummary {
        StreamSummary {
            method: "test".into(),
            steps: nres
                .iter()
                .enumerate()
                .map(|(t, &nre)| StepRecord {
                    t,
                    nre,
                    elapsed: Duration::from_millis(10),
                })
                .collect(),
        }
    }

    #[test]
    fn rae_is_mean_nre() {
        let s = summary(&[0.1, 0.2, 0.3]);
        assert!((s.rae() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn art_is_mean_time() {
        let s = summary(&[0.1, 0.2]);
        assert!((s.art_seconds() - 0.01).abs() < 1e-9);
        assert!((s.total_seconds() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_nan() {
        let s = summary(&[]);
        assert!(s.rae().is_nan());
        assert!(s.art_seconds().is_nan());
    }

    #[test]
    fn nre_matches_relative_error() {
        let a = DenseTensor::full(Shape::new(&[4]), 2.0);
        let b = DenseTensor::full(Shape::new(&[4]), 1.0);
        assert!((nre(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn afe_averages_pairs() {
        let truth = DenseTensor::full(Shape::new(&[4]), 1.0);
        let perfect = truth.clone();
        let off = DenseTensor::full(Shape::new(&[4]), 2.0);
        let pairs = vec![(perfect, truth.clone()), (off, truth)];
        assert!((afe(&pairs) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nre_series_preserves_order() {
        let s = summary(&[0.5, 0.4]);
        assert_eq!(s.nre_series(), vec![(0, 0.5), (1, 0.4)]);
    }
}
