//! Multi-horizon forecasting (paper §V-D, Eq. (28)).
//!
//! Given the state at the end of a stream (`t_end`), SOFIA forecasts the
//! subtensor at `t_end + h` by Holt-Winters-extrapolating each component of
//! the temporal factor and reconstructing with the latest non-temporal
//! factors. This module adds batch helpers over [`crate::dynamic`].

use crate::dynamic::DynamicState;
use sofia_tensor::DenseTensor;

/// Forecasts the next `horizon` subtensors `Ŷ_{t_end+1}, …, Ŷ_{t_end+h}`.
pub fn forecast_horizon(state: &DynamicState, horizon: usize) -> Vec<DenseTensor> {
    (1..=horizon).map(|h| state.forecast_slice(h)).collect()
}

/// Forecasts only the temporal vectors for the next `horizon` steps —
/// useful for inspecting the discovered temporal patterns without paying
/// for dense reconstruction.
pub fn forecast_temporal(state: &DynamicState, horizon: usize) -> Vec<Vec<f64>> {
    (1..=horizon).map(|h| state.hw().forecast(h)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SofiaConfig;
    use crate::dynamic::DynamicState;
    use crate::hw::HwBank;
    use sofia_tensor::{Matrix, ObservedTensor};
    use sofia_timeseries::holt_winters::{HoltWinters, HwParams, HwState};

    fn linear_state() -> DynamicState {
        // Rank-1, trend-only temporal model: u(t) grows by 1 per step.
        let config = SofiaConfig::new(1, 2);
        let factors = vec![
            Matrix::from_fn(2, 1, |i, _| (i + 1) as f64),
            Matrix::from_fn(2, 1, |i, _| 1.0 - i as f64 * 0.5),
        ];
        let history = vec![vec![9.0], vec![10.0]];
        let hw = HwBank::from_models(vec![HoltWinters::new(
            HwParams::new(0.5, 0.5, 0.0),
            HwState::new(10.0, 1.0, vec![0.0, 0.0], 0),
        )]);
        DynamicState::new(config, factors, history, hw)
    }

    #[test]
    fn horizon_forecasts_extend_linearly() {
        let st = linear_state();
        let fcs = forecast_horizon(&st, 3);
        assert_eq!(fcs.len(), 3);
        // u(h) = 10 + h; entry (0,0) = 1·1·u.
        for (h, fc) in fcs.iter().enumerate() {
            let expected = 10.0 + (h + 1) as f64;
            assert!((fc.get(&[0, 0]) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn temporal_forecasts_match_slices() {
        // DynamicState normalizes factor columns at construction, so the
        // identity must be checked against the *current* factors.
        let st = linear_state();
        let ts = forecast_temporal(&st, 4);
        let fs = forecast_horizon(&st, 4);
        let coeff = st.factors()[0].get(1, 0) * st.factors()[1].get(0, 0);
        for (u, f) in ts.iter().zip(&fs) {
            assert!((f.get(&[1, 0]) - coeff * u[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn forecast_consistent_after_steps() {
        let mut st = linear_state();
        // Feed two slices consistent with the trend, built from the
        // ORIGINAL (pre-normalization) factor convention — reconstructions
        // are scale-invariant, so the linear u(t) = 10 + (t − t₀) series
        // continues as u = 11, 12 in that convention.
        let a = Matrix::from_fn(2, 1, |i, _| (i + 1) as f64);
        let b = Matrix::from_fn(2, 1, |i, _| 1.0 - i as f64 * 0.5);
        for t in 0..2 {
            let u = 11.0 + t as f64;
            let truth = sofia_tensor::kruskal::kruskal_slice(&[&a, &b], &[u]);
            st.step(&ObservedTensor::fully_observed(truth));
        }
        // Next forecast: entry (0,0) = a₀·b₀·u = 1·1·13 in that convention.
        let fc = forecast_horizon(&st, 1);
        assert!(
            (fc[0].get(&[0, 0]) - 13.0).abs() < 0.1,
            "{}",
            fc[0].get(&[0, 0])
        );
    }
}
