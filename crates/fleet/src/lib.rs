//! # sofia-fleet
//!
//! A sharded multi-stream serving engine for the SOFIA reproduction.
//!
//! SOFIA is an *online* factorizer: it ingests one partially observed
//! subtensor per tick and answers imputation/forecast queries between
//! ticks. A production deployment serves **many** such streams at once —
//! one model per sensor network, per tenant, per route matrix. This crate
//! provides that serving substrate:
//!
//! * **Sharded registry** ([`registry`]) — stream id → model,
//!   hash-partitioned over `N` shards with a stable FNV-based route, each
//!   shard owned by one worker thread. Models never move between threads
//!   and are touched only by their owner, so steps for streams on
//!   different shards run in parallel with no hot-path locking.
//! * **Bounded ingest with backpressure** (the private `shard` module) —
//!   each shard has a
//!   bounded queue; [`Fleet::try_ingest`] never blocks and hands the
//!   slice back inside [`IngestError::Backpressure`] when the queue is
//!   full. Workers drain their whole queue per wakeup and apply the batch
//!   in arrival order.
//! * **Typed query plane** ([`protocol`]) — one routable
//!   [`Query`]/[`QueryResponse`] protocol (latest completed slice,
//!   `h`-step forecast, outlier mask, per-stream serving stats) carried
//!   on a per-shard query queue that the worker drains after every
//!   ingest batch. [`Fleet::query`] returns a [`QueryTicket`]
//!   completion handle so callers pipeline many in-flight queries;
//!   [`Fleet::query_batch`] groups a multi-stream request set into one
//!   queue round-trip per involved shard (the non-blocking
//!   [`Fleet::query_batch_tickets`] stages the same batch and hands the
//!   tickets back unsettled). Per-kind query counters and a query-queue
//!   depth gauge land in [`ShardStats`]. Both directions have text wire
//!   forms — [`Query::to_wire`] one-line requests,
//!   [`QueryResponse::to_wire`] multi-line bit-exact replies
//!   ([`protocol::wire`]) — which the `sofia-net` TCP data plane
//!   carries verbatim.
//! * **Durability** ([`durability`]) — periodic per-stream checkpoints as
//!   tagged **v2 checkpoint envelopes** (`sofia-checkpoint v2` +
//!   `model <kind>`; see [`sofia_core::snapshot`]), written with atomic
//!   temp-file + rename rotation. Every snapshot-capable model is
//!   durable — SOFIA and baselines alike — and [`Fleet::recover`]
//!   restores each stream by dispatching on its envelope's model kind;
//!   restored models produce outputs identical to an uninterrupted run.
//!   Bare pre-envelope v1 SOFIA files keep loading bit-exactly.
//! * **Stream lifecycle** ([`FleetConfig::evict_idle_after`]) — idle
//!   snapshot-capable streams (LRU by last-ingest step) are checkpointed
//!   and unloaded from their shard, then lazily restored on the next
//!   ingest or query; `ShardStats` counts evictions and restores.
//!
//! ## Quick example
//!
//! ```
//! use sofia_fleet::{Fleet, FleetConfig, ModelHandle};
//! use sofia_core::traits::{StepOutput, StreamingFactorizer};
//! use sofia_tensor::{DenseTensor, ObservedTensor, Shape};
//!
//! // Any `StreamingFactorizer + Send` can be served. Models that also
//! // implement `SnapshotModel` register through `ModelHandle::durable`
//! // (SOFIA: `ModelHandle::sofia`) and additionally get checkpointed,
//! // crash-recovered, and evicted/restored when idle.
//! struct Echo;
//! impl StreamingFactorizer for Echo {
//!     fn name(&self) -> &'static str { "echo" }
//!     fn step(&mut self, s: &ObservedTensor) -> StepOutput {
//!         StepOutput { completed: s.values().clone(), outliers: None }
//!     }
//! }
//!
//! let fleet = Fleet::new(FleetConfig::with_shards(2)).unwrap();
//! let key = fleet.register("sensor-net-7", ModelHandle::boxed(Box::new(Echo))).unwrap();
//! let slice = ObservedTensor::fully_observed(
//!     DenseTensor::full(Shape::new(&[2, 3]), 1.5));
//! fleet.try_ingest(&key, slice).unwrap();
//! fleet.flush().unwrap();
//!
//! // The typed query plane: one request enum, one response enum, one
//! // completion handle. `query` returns a ticket immediately…
//! use sofia_fleet::{Query, QueryResponse};
//! let ticket = fleet.query("sensor-net-7", Query::Latest).unwrap();
//! let QueryResponse::Latest(Some(latest)) = ticket.wait().unwrap() else {
//!     panic!("stepped stream answers Latest");
//! };
//! assert_eq!(latest.completed.get(&[0, 0]), 1.5);
//!
//! // …and `query_batch` answers many requests with one queue
//! // round-trip per involved shard.
//! let responses = fleet
//!     .query_batch(&[
//!         ("sensor-net-7", Query::StreamStats),
//!         ("sensor-net-7", Query::OutlierMask),
//!     ])
//!     .unwrap();
//! let QueryResponse::StreamStats(stats) = responses[0].as_ref().unwrap() else {
//!     panic!("responses align with requests");
//! };
//! assert_eq!(stats.steps, 1);
//! ```

pub mod durability;
pub mod engine;
pub mod error;
pub mod lease;
pub mod model;
pub mod protocol;
pub mod registry;
pub(crate) mod shard;
pub mod stats;

pub use durability::CheckpointPolicy;
pub use engine::{Fleet, FleetConfig};
pub use error::{FleetError, IngestError};
pub use lease::{LeaseState, LeaseTable};
pub use model::ModelHandle;
pub use protocol::wire::WireError;
pub use protocol::{Query, QueryKind, QueryResponse, QueryTicket};
pub use registry::{shard_of, StreamKey};
// Re-exported so implementing durability for a custom served model needs
// only this crate's prelude.
pub use sofia_core::snapshot::{RestoreModel, SnapshotModel};
pub use stats::{Ewma, FleetStats, MetricKind, QueryCounters, ShardStats, StreamStats};
