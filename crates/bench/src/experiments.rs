//! The imputation experiment engine shared by Figures 1, 3, 4, and 5.
//!
//! One "cell" of the paper's grid is (dataset × corruption setting): every
//! method is warm-started on the same corrupted 3-season window and then
//! streamed over the same corrupted slices, recording per-step NRE against
//! the clean truth plus wall-clock time.

use crate::suite::{build_method, MethodKind};
use sofia_datagen::corrupt::{CorruptionConfig, Corruptor};
use sofia_datagen::datasets::Dataset;
use sofia_datagen::stream::TensorStream;
use sofia_eval::metrics::StreamSummary;
use sofia_eval::runner::{run_stream, startup_window, StreamConfig};
use std::time::Instant;

/// Result of one (dataset × setting) experiment cell.
#[derive(Debug, Clone)]
pub struct ImputationCell {
    /// Dataset identifier.
    pub dataset: Dataset,
    /// Corruption setting.
    pub setting: CorruptionConfig,
    /// Per-method stream summaries, in suite order.
    pub summaries: Vec<StreamSummary>,
    /// Per-method initialization wall time (seconds), same order.
    pub init_seconds: Vec<(String, f64)>,
    /// Number of evaluated stream steps.
    pub steps: usize,
}

/// Options for one experiment cell.
#[derive(Debug, Clone, Copy)]
pub struct CellOptions {
    /// Spatial scale of the dataset proxy.
    pub scale: f64,
    /// Evaluated stream steps after the start-up window (capped by the
    /// dataset's Table III stream length).
    pub steps: usize,
    /// Cap on SOFIA's Algorithm-1 outer iterations.
    pub max_outer: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for CellOptions {
    fn default() -> Self {
        Self {
            scale: 0.3,
            steps: 200,
            max_outer: 300,
            seed: 2021,
        }
    }
}

/// Runs one (dataset × setting) cell for the given methods.
pub fn run_imputation_cell(
    dataset: Dataset,
    setting: CorruptionConfig,
    methods: &[MethodKind],
    opts: CellOptions,
) -> ImputationCell {
    let stream = dataset.scaled_stream(opts.scale, opts.seed);
    let m = stream.period();
    let t_init = 3 * m;
    let max_abs = stream.max_abs_over_season();
    let corruptor = Corruptor::new(setting, max_abs, opts.seed ^ 0xc0ffee);

    let startup = startup_window(&stream, &corruptor, t_init);
    let t_end = (t_init + opts.steps).min(dataset.stream_len().max(t_init + 1));
    let window = StreamConfig {
        start: t_init,
        end: t_end,
    };

    let mut summaries = Vec::with_capacity(methods.len());
    let mut init_seconds = Vec::with_capacity(methods.len());
    for &kind in methods {
        let started = Instant::now();
        let mut method = build_method(
            kind,
            &startup,
            dataset.paper_rank(),
            m,
            opts.max_outer,
            opts.seed,
        );
        init_seconds.push((kind.name().to_string(), started.elapsed().as_secs_f64()));
        let summary = run_stream(method.as_mut(), &stream, &corruptor, window);
        summaries.push(summary);
    }
    ImputationCell {
        dataset,
        setting,
        summaries,
        init_seconds,
        steps: t_end - t_init,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_runs_all_methods_and_sofia_wins_under_corruption() {
        let opts = CellOptions {
            scale: 0.05,
            steps: 21,
            max_outer: 80,
            seed: 11,
        };
        let cell = run_imputation_cell(
            Dataset::NycTaxi,
            CorruptionConfig::from_percents(30, 15, 3.0),
            &MethodKind::imputation_suite(),
            opts,
        );
        assert_eq!(cell.summaries.len(), 5);
        assert_eq!(cell.steps, 21);
        let rae: Vec<(String, f64)> = cell
            .summaries
            .iter()
            .map(|s| (s.method.clone(), s.rae()))
            .collect();
        let sofia = rae.iter().find(|(n, _)| n == "SOFIA").unwrap().1;
        // SOFIA should beat the non-robust methods on corrupted streams.
        let online = rae.iter().find(|(n, _)| n == "OnlineSGD").unwrap().1;
        assert!(
            sofia < online,
            "SOFIA ({sofia}) should beat OnlineSGD ({online}); all: {rae:?}"
        );
    }
}
