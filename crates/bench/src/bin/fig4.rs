//! Figure 4 — running average error (RAE) under the four corruption
//! settings, per dataset, with SOFIA's improvement over the second-best
//! method (the percentages annotated in the paper's bars).

use sofia_bench::args::ExpArgs;
use sofia_bench::experiments::{run_imputation_cell, CellOptions};
use sofia_bench::suite::MethodKind;
use sofia_datagen::corrupt::CorruptionConfig;
use sofia_datagen::datasets::Dataset;
use sofia_eval::report::{text_table, write_report};

fn main() {
    let args = ExpArgs::from_env();
    let opts = CellOptions {
        scale: args.scale,
        steps: args.steps.unwrap_or(if args.full { 1500 } else { 170 }),
        max_outer: if args.full { 300 } else { 150 },
        seed: args.seed,
    };
    let methods = MethodKind::imputation_suite();
    let settings = CorruptionConfig::paper_settings();

    println!("Figure 4: running average error (RAE), mildest → harshest setting");
    println!();

    let mut csv = String::from("dataset,setting,method,rae\n");
    for dataset in Dataset::all() {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for setting in settings {
            let cell = run_imputation_cell(dataset, setting, &methods, opts);
            let mut raes: Vec<(String, f64)> = cell
                .summaries
                .iter()
                .map(|s| (s.method.clone(), s.rae()))
                .collect();
            for (name, rae) in &raes {
                csv.push_str(&format!(
                    "{},{},{},{:.6}\n",
                    dataset.name(),
                    setting.label(),
                    name,
                    rae
                ));
            }
            // SOFIA's improvement vs the best competitor.
            let sofia = raes
                .iter()
                .find(|(n, _)| n == "SOFIA")
                .map(|(_, r)| *r)
                .unwrap_or(f64::NAN);
            raes.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let best_other = raes
                .iter()
                .find(|(n, _)| n != "SOFIA")
                .map(|(_, r)| *r)
                .unwrap_or(f64::NAN);
            let improvement = 100.0 * (1.0 - sofia / best_other);
            let mut row = vec![setting.label()];
            row.extend(cell.summaries.iter().map(|s| format!("{:.3}", s.rae())));
            row.push(format!("{improvement:+.0}%"));
            rows.push(row);
        }
        let mut header = vec!["setting"];
        header.extend(methods.iter().map(|m| m.name()));
        header.push("SOFIA vs 2nd-best");
        println!("--- {}", dataset.name());
        print!("{}", text_table(&header, &rows));
        println!();
    }
    write_report(&args.out.join("fig4_rae.csv"), &csv).expect("write csv");
    println!("CSV written to {}", args.out.join("fig4_rae.csv").display());
}
