//! MAST-style sliding-window streaming tensor completion (Song et al.,
//! "Multi-aspect streaming tensor completion", KDD 2017).
//!
//! MAST handles tensors growing along multiple aspects with low-rank ADMM.
//! The paper's evaluation only grows the time mode, so this reproduction
//! keeps MAST's operative behaviour there: a **sliding window** of recent
//! slices is re-completed each step by weighted ALS with exponential
//! forgetting of older slices (see DESIGN.md for the substitution
//! argument). The method is accurate on clean data but — matching the
//! paper's findings — not robust to outliers and markedly slower than the
//! truly online competitors because every step refits a window.

use crate::common::{reconstruct_slice, solve_temporal_weights};
use sofia_core::traits::{StepOutput, StreamingFactorizer};
use sofia_tensor::linalg::solve_spd_ridge;
use sofia_tensor::{Matrix, ObservedTensor};
use std::collections::VecDeque;

/// Sliding-window streaming completion with exponential forgetting.
#[derive(Debug, Clone)]
pub struct Mast {
    factors: Vec<Matrix>,
    window: VecDeque<ObservedTensor>,
    /// Temporal weight rows for the slices currently in the window.
    temporal: VecDeque<Vec<f64>>,
    /// Window capacity `W`.
    window_len: usize,
    /// Per-step forgetting `θ ∈ (0, 1]` applied to older slices.
    theta: f64,
    /// ALS sweeps per step.
    sweeps: usize,
}

impl Mast {
    /// Creates a model from starting non-temporal factors.
    pub fn new(factors: Vec<Matrix>, window_len: usize, theta: f64, sweeps: usize) -> Self {
        assert!(!factors.is_empty());
        assert!(window_len >= 1, "window must hold at least one slice");
        assert!((0.0..=1.0).contains(&theta) && theta > 0.0);
        assert!(sweeps >= 1);
        Self {
            factors,
            window: VecDeque::new(),
            temporal: VecDeque::new(),
            window_len,
            theta,
            sweeps,
        }
    }

    /// Warm-starts from a start-up window of slices.
    pub fn init(
        startup: &[ObservedTensor],
        rank: usize,
        window_len: usize,
        theta: f64,
        sweeps: usize,
        seed: u64,
    ) -> Self {
        let (factors, _) = crate::common::warm_start(startup, rank, 100, seed);
        let mut model = Self::new(factors, window_len, theta, sweeps);
        // Seed the window with the tail of the start-up data.
        for s in startup.iter().rev().take(window_len).rev() {
            let w = solve_temporal_weights(&model.factors, s);
            model.window.push_back(s.clone());
            model.temporal.push_back(w);
        }
        model
    }

    /// Current non-temporal factors.
    pub fn factors(&self) -> &[Matrix] {
        &self.factors
    }

    /// One weighted-ALS sweep over the window: non-temporal row systems are
    /// accumulated across all window slices with weights `θ^age`, then each
    /// slice's temporal row is re-solved.
    fn window_sweep(&mut self) {
        let rank = self.factors[0].cols();
        let n_modes = self.factors.len();
        let w_count = self.window.len();
        if w_count == 0 {
            return;
        }
        let shape = self.window[0].shape().clone();

        // --- Non-temporal modes.
        for n in 0..n_modes {
            let rows = self.factors[n].rows();
            let mut b = vec![0.0f64; rows * rank * rank];
            let mut c = vec![0.0f64; rows * rank];
            let mut counts = vec![0usize; rows];
            let mut idx = vec![0usize; shape.order()];
            let mut h = vec![0.0f64; rank];
            for (age_rev, (slice, w)) in self.window.iter().zip(&self.temporal).enumerate() {
                // Newest slice (back) gets weight 1.
                let weight = self.theta.powi((w_count - 1 - age_rev) as i32);
                for &off in slice.mask().observed_offsets() {
                    shape.unravel_into(off, &mut idx);
                    for k in 0..rank {
                        let mut p = w[k];
                        for (l, f) in self.factors.iter().enumerate() {
                            if l != n {
                                p *= f.row(idx[l])[k];
                            }
                        }
                        h[k] = p;
                    }
                    let y = slice.values().get_flat(off);
                    let row = idx[n];
                    counts[row] += 1;
                    let bb = &mut b[row * rank * rank..(row + 1) * rank * rank];
                    let cc = &mut c[row * rank..(row + 1) * rank];
                    for a in 0..rank {
                        cc[a] += weight * y * h[a];
                        for q in 0..rank {
                            bb[a * rank + q] += weight * h[a] * h[q];
                        }
                    }
                }
            }
            for i in 0..rows {
                if counts[i] == 0 {
                    continue;
                }
                let mut m = Matrix::zeros(rank, rank);
                for a in 0..rank {
                    for q in 0..rank {
                        m.set(a, q, b[i * rank * rank + a * rank + q]);
                    }
                }
                let cc = &c[i * rank..(i + 1) * rank];
                if let Ok(x) = solve_spd_ridge(&m, cc, 1e-9) {
                    self.factors[n].row_mut(i).copy_from_slice(&x);
                }
            }
        }

        // --- Temporal rows, one per window slice.
        for (slice, w) in self.window.iter().zip(self.temporal.iter_mut()) {
            *w = solve_temporal_weights(&self.factors, slice);
        }
    }
}

impl StreamingFactorizer for Mast {
    fn name(&self) -> &'static str {
        "MAST"
    }

    fn step(&mut self, slice: &ObservedTensor) -> StepOutput {
        // Grow the window.
        let w0 = solve_temporal_weights(&self.factors, slice);
        self.window.push_back(slice.clone());
        self.temporal.push_back(w0);
        while self.window.len() > self.window_len {
            self.window.pop_front();
            self.temporal.pop_front();
        }
        // Refit the window.
        for _ in 0..self.sweeps {
            self.window_sweep();
        }
        let w = self.temporal.back().expect("window non-empty").clone();
        let completed = reconstruct_slice(&self.factors, &w);
        StepOutput {
            completed,
            outliers: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sofia_tensor::random::random_factors;
    use sofia_tensor::Mask;

    fn slice_at(truth: &[Matrix], t: usize) -> sofia_tensor::DenseTensor {
        let w = vec![
            2.0 + (t as f64 * 0.3).sin(),
            -1.2 + 0.4 * (t as f64 * 0.15).cos(),
        ];
        reconstruct_slice(truth, &w)
    }

    #[test]
    fn tracks_clean_stream() {
        let mut rng = SmallRng::seed_from_u64(11);
        let truth = random_factors(&[5, 5], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..10)
            .map(|t| ObservedTensor::fully_observed(slice_at(&truth, t)))
            .collect();
        let mut model = Mast::init(&startup, 2, 5, 0.9, 2, 3);
        let mut total = 0.0;
        for t in 10..30 {
            let slice = slice_at(&truth, t);
            let out = model.step(&ObservedTensor::fully_observed(slice.clone()));
            total += (&out.completed - &slice).frobenius_norm() / slice.frobenius_norm();
        }
        let avg = total / 20.0;
        assert!(avg < 0.15, "clean-stream avg NRE {avg}");
    }

    #[test]
    fn completes_missing_entries() {
        let mut rng = SmallRng::seed_from_u64(12);
        let truth = random_factors(&[6, 5], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..10)
            .map(|t| ObservedTensor::fully_observed(slice_at(&truth, t)))
            .collect();
        let mut model = Mast::init(&startup, 2, 5, 0.9, 2, 5);
        let mut total = 0.0;
        for t in 10..28 {
            let slice = slice_at(&truth, t);
            let mask = Mask::random(slice.shape().clone(), 0.3, &mut rng);
            let out = model.step(&ObservedTensor::new(slice.clone(), mask));
            total += (&out.completed - &slice).frobenius_norm() / slice.frobenius_norm();
        }
        let avg = total / 18.0;
        assert!(avg < 0.15, "missing-data avg NRE {avg}");
    }

    #[test]
    fn window_is_bounded() {
        let mut rng = SmallRng::seed_from_u64(13);
        let truth = random_factors(&[4, 4], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..8)
            .map(|t| ObservedTensor::fully_observed(slice_at(&truth, t)))
            .collect();
        let mut model = Mast::init(&startup, 2, 3, 0.9, 1, 7);
        for t in 8..20 {
            model.step(&ObservedTensor::fully_observed(slice_at(&truth, t)));
        }
        assert_eq!(model.window.len(), 3);
        assert_eq!(model.temporal.len(), 3);
    }

    #[test]
    fn not_robust_to_outliers() {
        let mut rng = SmallRng::seed_from_u64(14);
        let truth = random_factors(&[5, 5], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..10)
            .map(|t| ObservedTensor::fully_observed(slice_at(&truth, t)))
            .collect();
        let mut model = Mast::init(&startup, 2, 5, 0.9, 2, 9);
        let mut dirty_err = 0.0;
        for t in 10..30 {
            let clean = slice_at(&truth, t);
            let mut vals = clean.clone();
            for off in 0..vals.len() {
                if rng.gen::<f64>() < 0.15 {
                    vals.set_flat(off, 30.0);
                }
            }
            let out = model.step(&ObservedTensor::fully_observed(vals));
            dirty_err += (&out.completed - &clean).frobenius_norm() / clean.frobenius_norm();
        }
        let avg = dirty_err / 20.0;
        assert!(avg > 0.3, "MAST should be visibly hurt by outliers: {avg}");
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_zero_window() {
        Mast::new(vec![Matrix::identity(2), Matrix::identity(2)], 0, 0.9, 1);
    }
}
