//! Vanilla ALS for incomplete tensors (Zhou et al. 2008; the CP-WOPT-style
//! batch completion of Acar et al. 2011).
//!
//! This is the non-smooth, non-robust batch factorizer used (a) as the
//! Figure 2 initialization baseline, and (b) as the CP step inside
//! [`crate::cphw`]. It is simply SOFIA_ALS with `λ₁ = λ₂ = 0` and no
//! outlier handling.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sofia_core::als::{reconstruct, sofia_als, AlsOptions, AlsStats};
use sofia_tensor::random::random_factors;
use sofia_tensor::{DenseTensor, Matrix, ObservedTensor};

/// Result of a batch vanilla-ALS fit.
#[derive(Debug, Clone)]
pub struct VanillaAls {
    /// Factor matrices, the last one temporal.
    pub factors: Vec<Matrix>,
    /// The completed tensor `X̂`.
    pub completed: DenseTensor,
    /// ALS run statistics.
    pub stats: AlsStats,
}

impl VanillaAls {
    /// Fits a rank-`rank` CP model to an incomplete tensor by plain ALS.
    pub fn fit(data: &ObservedTensor, rank: usize, max_iters: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut factors = random_factors(data.shape().dims(), rank, &mut rng);
        for f in &mut factors {
            f.scale(0.1);
        }
        Self::fit_from(data, factors, max_iters)
    }

    /// Fits from caller-supplied starting factors (used by Fig. 2, which
    /// compares ALS variants from identical random starts).
    pub fn fit_from(data: &ObservedTensor, mut factors: Vec<Matrix>, max_iters: usize) -> Self {
        let opts = AlsOptions::vanilla(1e-6, max_iters);
        let stats = sofia_als(data, data.values(), &mut factors, &opts);
        let completed = reconstruct(&factors);
        Self {
            factors,
            completed,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use sofia_tensor::{kruskal, Mask, Shape};

    fn low_rank(dims: &[usize], rank: usize, seed: u64) -> DenseTensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        let factors = random_factors(dims, rank, &mut rng);
        let refs: Vec<&Matrix> = factors.iter().collect();
        kruskal::kruskal(&refs)
    }

    #[test]
    fn fits_complete_low_rank_tensor() {
        let truth = low_rank(&[5, 4, 7], 2, 1);
        let data = ObservedTensor::fully_observed(truth.clone());
        let fit = VanillaAls::fit(&data, 2, 300, 9);
        let rel = (&fit.completed - &truth).frobenius_norm() / truth.frobenius_norm();
        assert!(rel < 1e-2, "rel {rel}");
    }

    #[test]
    fn completes_missing_entries() {
        let truth = low_rank(&[6, 5, 8], 2, 2);
        let mut rng = SmallRng::seed_from_u64(7);
        let mask = Mask::random(truth.shape().clone(), 0.3, &mut rng);
        let data = ObservedTensor::new(truth.clone(), mask);
        let fit = VanillaAls::fit(&data, 2, 300, 11);
        let rel = (&fit.completed - &truth).frobenius_norm() / truth.frobenius_norm();
        assert!(rel < 0.05, "rel {rel}");
    }

    #[test]
    fn vulnerable_to_outliers_unlike_sofia() {
        // The Fig. 2 claim in miniature: with large sparse outliers,
        // vanilla ALS produces a much worse fit than the outlier-removing
        // initialization of SOFIA.
        let truth = low_rank(&[6, 5, 9], 2, 3);
        let truth = truth.map(|v| v * 0.5); // z-score-ish scale
        let max = truth.max_abs();
        let mut rng = SmallRng::seed_from_u64(13);
        let mut corrupted = truth.clone();
        for off in 0..corrupted.len() {
            if rng.gen::<f64>() < 0.15 {
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                corrupted.set_flat(off, sign * 6.0 * max);
            }
        }
        let data = ObservedTensor::new(corrupted, Mask::all_observed(truth.shape().clone()));

        let vanilla = VanillaAls::fit(&data, 2, 200, 21);
        let rel_vanilla = (&vanilla.completed - &truth).frobenius_norm() / truth.frobenius_norm();

        let config = sofia_core::SofiaConfig::new(2, 3)
            .with_lambdas(0.01, 0.01, 10.0 * max / 4.5)
            .with_als_limits(1e-6, 1, 300);
        let robust = sofia_core::init::initialize(&data, &config, 21);
        let rel_robust = (&robust.completed - &truth).frobenius_norm() / truth.frobenius_norm();

        assert!(
            rel_robust < rel_vanilla * 0.5,
            "robust {rel_robust} should beat vanilla {rel_vanilla}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let truth = low_rank(&[4, 4, 4], 2, 5);
        let data = ObservedTensor::fully_observed(truth);
        let a = VanillaAls::fit(&data, 2, 50, 3);
        let b = VanillaAls::fit(&data, 2, 50, 3);
        assert_eq!(a.completed.data(), b.completed.data());
    }

    #[test]
    fn reports_stats() {
        let truth = low_rank(&[4, 4, 4], 1, 6);
        let data = ObservedTensor::fully_observed(truth);
        let fit = VanillaAls::fit(&data, 1, 100, 2);
        assert!(fit.stats.iterations >= 1);
        assert!(fit.stats.fitness > 0.9);
        let _ = DenseTensor::zeros(Shape::new(&[1])); // silence unused import in some cfgs
    }
}
