//! SMF-style seasonal matrix factorization (Hooi, Shin, Liu & Faloutsos,
//! "SMF: Drift-aware matrix factorization with seasonal patterns",
//! SDM 2019).
//!
//! SMF factorizes a fully observed matrix stream: each incoming slice is
//! vectorized into `y_t ∈ R^D`, modelled as `y_t ≈ Vᵀ z_t` with latent
//! coefficients `z_t ∈ R^R` that follow a seasonal-plus-drift process.
//! Forecasts reuse the same phase's coefficient from the previous season
//! plus an EWMA drift. SMF exploits seasonality but has no outlier
//! handling and — as Table I notes — is not applicable to tensors with
//! missing entries (the paper evaluates it fully observed; this
//! implementation projects with whatever entries are present but is only
//! benchmarked fully observed).

use crate::common::{
    parse_factors, push_factors, reconstruct_slice, solve_temporal_weights, warm_start,
};
use sofia_core::checkpoint::CheckpointError;
use sofia_core::snapshot::wire::{parse_f64s, parse_usizes, push_f64s};
use sofia_core::snapshot::{RestoreModel, SnapshotModel};
use sofia_core::traits::{StepOutput, StreamingFactorizer};
use sofia_tensor::{DenseTensor, Matrix, ObservedTensor};
use std::collections::VecDeque;

/// Seasonal matrix factorization over a vectorized slice stream.
#[derive(Debug, Clone)]
pub struct Smf {
    factors: Vec<Matrix>,
    /// Ring of the last `m` latent coefficient vectors.
    seasonal: VecDeque<Vec<f64>>,
    /// EWMA of the season-over-season drift `(z_t − z_{t−m})/m`.
    drift: Vec<f64>,
    /// Drift smoothing parameter.
    drift_alpha: f64,
    /// SGD step for the basis update.
    mu: f64,
}

impl Smf {
    /// Warm-starts basis and seasonal coefficients from a start-up window
    /// (which must span at least one full season).
    pub fn init(
        startup: &[ObservedTensor],
        rank: usize,
        period: usize,
        mu: f64,
        seed: u64,
    ) -> Self {
        assert!(
            startup.len() >= period,
            "need at least one full season of start-up slices"
        );
        let (factors, temporal) = warm_start(startup, rank, 100, seed);
        let rows = temporal.rows();
        let seasonal: VecDeque<Vec<f64>> = (rows - period..rows)
            .map(|i| temporal.row(i).to_vec())
            .collect();
        // Initial drift from first vs last season if available.
        let drift = if rows >= 2 * period {
            (0..rank)
                .map(|k| {
                    (temporal.get(rows - 1, k) - temporal.get(rows - 1 - period, k)) / period as f64
                })
                .collect()
        } else {
            vec![0.0; rank]
        };
        Self {
            factors,
            seasonal,
            drift,
            drift_alpha: 0.2,
            mu,
        }
    }

    /// Seasonal period `m`.
    pub fn period(&self) -> usize {
        self.seasonal.len()
    }

    /// Forecast of the latent coefficients `h` steps ahead.
    fn forecast_z(&self, h: usize) -> Vec<f64> {
        let m = self.period();
        let rank = self.drift.len();
        // Coefficient of the same phase in the last season...
        let base = &self.seasonal[(h - 1) % m];
        // ...advanced by the drift estimate.
        let steps = h as f64;
        (0..rank).map(|k| base[k] + self.drift[k] * steps).collect()
    }
}

impl StreamingFactorizer for Smf {
    fn name(&self) -> &'static str {
        "SMF"
    }

    fn step(&mut self, slice: &ObservedTensor) -> StepOutput {
        let m = self.period();
        // Project to latent coefficients.
        let z = solve_temporal_weights(&self.factors, slice);
        // Drift EWMA against the same phase one season back.
        let z_season = self.seasonal.front().expect("season ring non-empty");
        for k in 0..z.len() {
            let inst = (z[k] - z_season[k]) / m as f64;
            self.drift[k] = self.drift_alpha * inst + (1.0 - self.drift_alpha) * self.drift[k];
        }
        // Basis SGD step.
        crate::common::damped_sgd_step(&mut self.factors, slice, &z, self.mu);
        // Advance the season ring.
        self.seasonal.pop_front();
        self.seasonal.push_back(z.clone());

        let completed = reconstruct_slice(&self.factors, &z);
        StepOutput {
            completed,
            outliers: None,
        }
    }

    fn forecast(&self, h: usize) -> Option<DenseTensor> {
        let z = self.forecast_z(h);
        Some(reconstruct_slice(&self.factors, &z))
    }
}

impl SnapshotModel for Smf {
    fn snapshot_kind(&self) -> &'static str {
        Self::KIND
    }

    fn snapshot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("smf v1\n");
        push_f64s(&mut out, "hyper", [self.mu, self.drift_alpha]);
        push_factors(&mut out, &self.factors);
        push_f64s(&mut out, "drift", self.drift.iter().copied());
        let _ = writeln!(out, "seasonal {}", self.seasonal.len());
        for z in &self.seasonal {
            push_f64s(&mut out, "z", z.iter().copied());
        }
        out
    }
}

impl RestoreModel for Smf {
    const KIND: &'static str = "smf";

    fn restore(payload: &str) -> Result<Self, CheckpointError> {
        let mut lines = payload.lines();
        let mut next = |what: &str| -> Result<&str, CheckpointError> {
            lines
                .next()
                .ok_or_else(|| CheckpointError::Malformed(format!("unexpected EOF at {what}")))
        };
        if next("header")?.trim_end() != "smf v1" {
            return Err(CheckpointError::BadHeader);
        }
        let hyper = parse_f64s(next("hyper")?, "hyper")?;
        let &[mu, drift_alpha] = hyper.as_slice() else {
            return Err(CheckpointError::Malformed("hyper arity".into()));
        };
        let factors = parse_factors(&mut lines)?;
        let rank = factors.first().map(Matrix::cols).unwrap_or(0);
        let drift = parse_f64s(
            lines
                .next()
                .ok_or_else(|| CheckpointError::Malformed("unexpected EOF at drift".into()))?,
            "drift",
        )?;
        let m = parse_usizes(
            lines
                .next()
                .ok_or_else(|| CheckpointError::Malformed("unexpected EOF at seasonal".into()))?,
            "seasonal",
        )?;
        let &[m] = m.as_slice() else {
            return Err(CheckpointError::Malformed("seasonal count".into()));
        };
        // File-supplied count: clamp the pre-allocation (a corrupt count
        // must error on missing lines, not panic the restoring thread).
        let mut seasonal = VecDeque::with_capacity(m.min(1024));
        for _ in 0..m {
            let z = parse_f64s(
                lines
                    .next()
                    .ok_or_else(|| CheckpointError::Malformed("unexpected EOF at z".into()))?,
                "z",
            )?;
            if z.len() != rank {
                return Err(CheckpointError::Malformed("seasonal row rank".into()));
            }
            seasonal.push_back(z);
        }
        if factors.is_empty() || seasonal.is_empty() || drift.len() != rank {
            return Err(CheckpointError::Malformed(
                "need factors, one full season, and rank-sized drift".into(),
            ));
        }
        Ok(Self {
            factors,
            seasonal,
            drift,
            drift_alpha,
            mu,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sofia_tensor::random::random_factors;

    #[test]
    fn snapshot_roundtrip_is_bit_exact() {
        let m = 5;
        let mut rng = SmallRng::seed_from_u64(41);
        let truth = random_factors(&[4, 4], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..2 * m)
            .map(|t| ObservedTensor::fully_observed(seasonal_slice(&truth, t, m)))
            .collect();
        let mut model = Smf::init(&startup, 2, m, 0.1, 9);
        for t in 2 * m..3 * m {
            model.step(&ObservedTensor::fully_observed(seasonal_slice(
                &truth, t, m,
            )));
        }
        assert_eq!(model.snapshot_kind(), Smf::KIND);
        let mut restored = Smf::restore(&model.snapshot()).expect("restore");
        for t in 3 * m..4 * m {
            let slice = ObservedTensor::fully_observed(seasonal_slice(&truth, t, m));
            let a = model.step(&slice);
            let b = restored.step(&slice);
            assert_eq!(a.completed.data(), b.completed.data(), "step {t}");
        }
        for h in 1..=m {
            assert_eq!(
                model.forecast(h).unwrap().data(),
                restored.forecast(h).unwrap().data(),
                "forecast h={h}"
            );
        }
    }

    #[test]
    fn restore_rejects_malformed() {
        assert!(matches!(
            Smf::restore("garbage"),
            Err(CheckpointError::BadHeader)
        ));
        let mut rng = SmallRng::seed_from_u64(43);
        let truth = random_factors(&[3, 3], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..4)
            .map(|t| ObservedTensor::fully_observed(seasonal_slice(&truth, t, 4)))
            .collect();
        let good = Smf::init(&startup, 2, 4, 0.1, 1).snapshot();
        let truncated: String = good.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(Smf::restore(&truncated).is_err());
        assert!(Smf::restore(&good.replace("seasonal 4", "seasonal 9")).is_err());
    }

    fn seasonal_slice(truth: &[Matrix], t: usize, m: usize) -> DenseTensor {
        let phase = 2.0 * std::f64::consts::PI * (t % m) as f64 / m as f64;
        let w = vec![2.0 + phase.sin(), -1.0 + 0.7 * phase.cos()];
        reconstruct_slice(truth, &w)
    }

    #[test]
    fn forecasts_seasonal_stream() {
        let m = 8;
        let mut rng = SmallRng::seed_from_u64(31);
        let truth = random_factors(&[5, 5], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..2 * m)
            .map(|t| ObservedTensor::fully_observed(seasonal_slice(&truth, t, m)))
            .collect();
        let mut model = Smf::init(&startup, 2, m, 0.1, 3);
        for t in 2 * m..5 * m {
            model.step(&ObservedTensor::fully_observed(seasonal_slice(
                &truth, t, m,
            )));
        }
        let t_end = 5 * m;
        let mut total = 0.0;
        for h in 1..=m {
            let fc = model.forecast(h).unwrap();
            let truth_slice = seasonal_slice(&truth, t_end + h - 1, m);
            total += (&fc - &truth_slice).frobenius_norm() / truth_slice.frobenius_norm();
        }
        let avg = total / m as f64;
        assert!(avg < 0.2, "seasonal forecast avg error {avg}");
    }

    #[test]
    fn tracks_stream_completions() {
        let m = 6;
        let mut rng = SmallRng::seed_from_u64(32);
        let truth = random_factors(&[4, 6], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..2 * m)
            .map(|t| ObservedTensor::fully_observed(seasonal_slice(&truth, t, m)))
            .collect();
        let mut model = Smf::init(&startup, 2, m, 0.1, 5);
        let mut total = 0.0;
        for t in 2 * m..4 * m {
            let slice = seasonal_slice(&truth, t, m);
            let out = model.step(&ObservedTensor::fully_observed(slice.clone()));
            total += (&out.completed - &slice).frobenius_norm() / slice.frobenius_norm();
        }
        let avg = total / (2 * m) as f64;
        assert!(avg < 0.05, "tracking avg NRE {avg}");
    }

    #[test]
    fn forecast_hurt_by_outliers() {
        // Table I: SMF is not outlier-robust — corrupting the stream
        // degrades its forecasts much more than SOFIA's.
        let m = 6;
        let mut rng = SmallRng::seed_from_u64(33);
        let truth = random_factors(&[5, 5], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..2 * m)
            .map(|t| ObservedTensor::fully_observed(seasonal_slice(&truth, t, m)))
            .collect();
        let run = |corrupt: bool| -> f64 {
            let mut rng = SmallRng::seed_from_u64(99);
            let mut model = Smf::init(&startup, 2, m, 0.1, 5);
            for t in 2 * m..6 * m {
                let mut vals = seasonal_slice(&truth, t, m);
                if corrupt {
                    for off in 0..vals.len() {
                        if rng.gen::<f64>() < 0.2 {
                            vals.set_flat(off, 30.0);
                        }
                    }
                }
                model.step(&ObservedTensor::fully_observed(vals));
            }
            let t_end = 6 * m;
            (1..=m)
                .map(|h| {
                    let fc = model.forecast(h).unwrap();
                    let truth_slice = seasonal_slice(&truth, t_end + h - 1, m);
                    (&fc - &truth_slice).frobenius_norm() / truth_slice.frobenius_norm()
                })
                .sum::<f64>()
                / m as f64
        };
        let clean = run(false);
        let dirty = run(true);
        assert!(
            dirty > 3.0 * clean,
            "outliers should wreck SMF forecasts: clean {clean}, dirty {dirty}"
        );
    }

    #[test]
    #[should_panic(expected = "full season")]
    fn init_requires_one_season() {
        let slices = vec![ObservedTensor::fully_observed(DenseTensor::zeros(
            sofia_tensor::Shape::new(&[2, 2]),
        ))];
        Smf::init(&slices, 1, 4, 0.1, 1);
    }
}
