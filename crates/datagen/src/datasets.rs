//! Synthetic proxies for the paper's four datasets (Table III).
//!
//! | Dataset | Dimension | Period | Granularity | Transform |
//! |---|---|---|---|---|
//! | Intel Lab Sensor | 54 × 4 × 1152 | 144 | 10 minutes | standardized |
//! | Network Traffic | 23 × 23 × 2000 | 168 | hourly | log2(x+1) |
//! | Chicago Taxi | 77 × 77 × 2016 | 168 | hourly | log2(x+1) |
//! | NYC Taxi | 265 × 265 × 904 | 7 | daily | log2(x+1) |
//!
//! Each proxy is a rank-`R` seasonal CP stream with hub-structured spatial
//! factors (taxi zones and router pairs have heavy-tailed activity),
//! harmonic mixes matching the dataset's rhythm (daily cycles inside
//! weekly periods for the hourly datasets), mild trends, and Gaussian
//! observation noise — scaled so entries live in the z-score/log range the
//! paper's hyper-parameters (λ₃ = 10) are calibrated for. The paper's
//! per-dataset ranks are preserved: R = 4, 5, 10, 5 respectively.
//!
//! `scaled(spatial, time)` shrinks dimensions for quick runs while keeping
//! periods and value scales intact; experiment binaries expose this as
//! `--scale`.

use crate::seasonal::{SeasonalComponent, SeasonalStream};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sofia_tensor::Matrix;

/// Identifies one of the paper's four datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Intel Lab Sensor: 54 positions × 4 sensors, 10-minute readings.
    IntelLab,
    /// Network Traffic: 23 × 23 router pairs, hourly.
    NetworkTraffic,
    /// Chicago Taxi: 77 × 77 community areas, hourly pick-ups.
    ChicagoTaxi,
    /// NYC Taxi: 265 × 265 zones, daily.
    NycTaxi,
}

impl Dataset {
    /// All four datasets in the paper's Table III order.
    pub fn all() -> [Dataset; 4] {
        [
            Dataset::IntelLab,
            Dataset::NetworkTraffic,
            Dataset::ChicagoTaxi,
            Dataset::NycTaxi,
        ]
    }

    /// Human-readable name as printed in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::IntelLab => "Intel Lab Sensor",
            Dataset::NetworkTraffic => "Network Traffic",
            Dataset::ChicagoTaxi => "Chicago Taxi",
            Dataset::NycTaxi => "NYC Taxi",
        }
    }

    /// Full spatial dimensions from Table III.
    pub fn spatial_dims(&self) -> [usize; 2] {
        match self {
            Dataset::IntelLab => [54, 4],
            Dataset::NetworkTraffic => [23, 23],
            Dataset::ChicagoTaxi => [77, 77],
            Dataset::NycTaxi => [265, 265],
        }
    }

    /// Stream length (temporal mode size) from Table III.
    pub fn stream_len(&self) -> usize {
        match self {
            Dataset::IntelLab => 1152,
            Dataset::NetworkTraffic => 2000,
            Dataset::ChicagoTaxi => 2016,
            Dataset::NycTaxi => 904,
        }
    }

    /// Seasonal period from Table III.
    pub fn period(&self) -> usize {
        match self {
            Dataset::IntelLab => 144,
            Dataset::NetworkTraffic => 168,
            Dataset::ChicagoTaxi => 168,
            Dataset::NycTaxi => 7,
        }
    }

    /// The CP rank the paper uses for this dataset (Figs. 1, 3).
    pub fn paper_rank(&self) -> usize {
        match self {
            Dataset::IntelLab => 4,
            Dataset::NetworkTraffic => 5,
            Dataset::ChicagoTaxi => 10,
            Dataset::NycTaxi => 5,
        }
    }

    /// Builds the full-size synthetic proxy stream.
    pub fn stream(&self, seed: u64) -> SeasonalStream {
        self.scaled_stream(1.0, seed)
    }

    /// Builds a proxy with spatial dimensions scaled by `spatial ∈ (0, 1]`
    /// (stream length is controlled by the caller simply by consuming
    /// fewer slices; periods and value scales are preserved).
    pub fn scaled_stream(&self, spatial: f64, seed: u64) -> SeasonalStream {
        assert!(spatial > 0.0 && spatial <= 1.0, "spatial scale in (0,1]");
        let [d1, d2] = self.spatial_dims();
        let dims = [
            ((d1 as f64 * spatial).round() as usize).max(2),
            ((d2 as f64 * spatial).round() as usize).max(2),
        ];
        let rank = self.paper_rank();
        let period = self.period();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5e3a_11c0);

        // Hub-structured spatial factors: heavy-tailed positive loadings
        // (taxi zones / router pairs have a few dominant hubs); the sensor
        // dataset is standardized, so its factors are signed.
        let signed = matches!(self, Dataset::IntelLab);
        let factors: Vec<Matrix> = dims
            .iter()
            .map(|&d| {
                Matrix::from_fn(d, rank, |_, _| {
                    let g = sofia_tensor::random::sample_standard_normal(&mut rng);
                    if signed {
                        0.5 * g
                    } else {
                        // Log-normal-ish hubs, kept O(1) with a capped tail
                        // so entry scales stay in the calibrated range.
                        0.3 * (0.6 * g).min(1.2).exp()
                    }
                })
            })
            .collect();

        // Temporal components: a mix of one-cycle-per-season and daily
        // harmonics (hourly datasets have 7 daily cycles per weekly
        // season; the sensor dataset's season *is* the day).
        let daily_harmonic = match self {
            Dataset::NetworkTraffic | Dataset::ChicagoTaxi => 7.0,
            _ => 1.0,
        };
        // Higher ranks stack more components per entry: shrink each
        // component so the entry scale stays in the calibrated range.
        let comp_scale = (4.0 / rank as f64).sqrt();
        let components: Vec<SeasonalComponent> = (0..rank)
            .map(|r| {
                let harmonic = if r % 2 == 1 { daily_harmonic } else { 1.0 };
                SeasonalComponent {
                    amplitude: comp_scale * rng.gen_range(0.6..1.6),
                    phase: rng.gen_range(0.0..2.0 * std::f64::consts::PI),
                    offset: comp_scale * rng.gen_range(0.8..2.2),
                    trend: rng.gen_range(-2e-4..2e-4),
                    harmonic,
                }
            })
            .collect();

        SeasonalStream::new(factors, components, period).with_noise(0.05, seed ^ 0x77aa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::TensorStream;

    #[test]
    fn table_iii_dimensions() {
        assert_eq!(Dataset::IntelLab.spatial_dims(), [54, 4]);
        assert_eq!(Dataset::IntelLab.stream_len(), 1152);
        assert_eq!(Dataset::IntelLab.period(), 144);
        assert_eq!(Dataset::NetworkTraffic.spatial_dims(), [23, 23]);
        assert_eq!(Dataset::NetworkTraffic.period(), 168);
        assert_eq!(Dataset::ChicagoTaxi.spatial_dims(), [77, 77]);
        assert_eq!(Dataset::ChicagoTaxi.stream_len(), 2016);
        assert_eq!(Dataset::NycTaxi.spatial_dims(), [265, 265]);
        assert_eq!(Dataset::NycTaxi.period(), 7);
    }

    #[test]
    fn paper_ranks() {
        let ranks: Vec<usize> = Dataset::all().iter().map(|d| d.paper_rank()).collect();
        assert_eq!(ranks, vec![4, 5, 10, 5]);
    }

    #[test]
    fn full_stream_has_table_shape() {
        let s = Dataset::NetworkTraffic.stream(1);
        assert_eq!(s.slice_shape().dims(), &[23, 23]);
        assert_eq!(s.period(), 168);
    }

    #[test]
    fn scaled_stream_shrinks_spatially() {
        let s = Dataset::ChicagoTaxi.scaled_stream(0.25, 1);
        assert_eq!(s.slice_shape().dims(), &[19, 19]);
        // Period preserved.
        assert_eq!(s.period(), 168);
    }

    #[test]
    fn values_in_z_score_range() {
        // λ₃ = 10 calibration requires entries roughly in [−10, 10].
        for d in Dataset::all() {
            let s = d.scaled_stream(0.3, 7);
            let max = s.max_abs_over_season();
            assert!(
                max > 0.3 && max < 12.0,
                "{}: max_abs {max} outside calibrated range",
                d.name()
            );
        }
    }

    #[test]
    fn streams_are_seasonal() {
        // Same phase one season apart should be close (small trend+noise).
        let s = Dataset::NycTaxi.scaled_stream(0.2, 3);
        let m = s.period();
        let a = s.clean_slice(10);
        let b = s.clean_slice(10 + m);
        let rel = (&a - &b).frobenius_norm() / a.frobenius_norm();
        assert!(rel < 0.2, "seasonal mismatch {rel}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Dataset::IntelLab.scaled_stream(0.2, 5).clean_slice(3);
        let b = Dataset::IntelLab.scaled_stream(0.2, 5).clean_slice(3);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn hourly_datasets_have_daily_structure() {
        // Chicago: slices 24h apart (1/7 season) should correlate more
        // than slices 12h apart, thanks to the daily harmonic.
        let s = Dataset::ChicagoTaxi.scaled_stream(0.2, 9);
        let base = s.clean_slice(100);
        let day = s.clean_slice(124);
        let half_day = s.clean_slice(112);
        let d_day = (&base - &day).frobenius_norm();
        let d_half = (&base - &half_day).frobenius_norm();
        assert!(
            d_day < d_half,
            "daily rhythm missing: 24h diff {d_day} vs 12h diff {d_half}"
        );
    }
}
