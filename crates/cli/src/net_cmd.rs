//! The `serve` and `client` subcommands: the fleet engine behind a TCP
//! endpoint, and a shell client driving a remote fleet.
//!
//! ```text
//! sofia-cli serve  --bind 127.0.0.1:7411 [--advertise ADDR] [--recover]
//!                  [--empty] [--cluster EP0,EP1,...] [--slow-request-us N]
//!                  [fleet workload flags]
//! sofia-cli client --connect 127.0.0.1:7411 [--stats] [--metrics]
//!                  [--json | --prom] [--timeout-secs N] [--stream ID]
//!                  [--query "forecast 4"] [--ingest N] [--top-drift K]
//!                  [--shutdown]
//! ```
//!
//! `serve` warm-starts the same synthetic workload `fleet` uses (or
//! recovers a previous run's checkpoint directory with `--recover`, or
//! starts empty with `--empty` — cluster members receive their streams
//! over the wire), registers it, and serves until a client sends a
//! `shutdown` frame; `--cluster` makes the handshake advertise the
//! deployment spec's full shard map.
//! `client` connects, runs its requested operations in a fixed order
//! (stats → metrics → ingest → query → top-drift → shutdown, so a query
//! in the same invocation observes the ingested slices), and prints
//! what came back. `--metrics` collects every cluster member's
//! [`NetStats`] node-health snapshot and prints the per-node rows plus
//! the fleet-wide merge — as a human table by default, as JSON with
//! `--json`, or as a Prometheus text exposition with `--prom` (per-node
//! series only; Prometheus aggregates across label values itself).
//! `--top-drift K` sweeps every warm stream with one batched
//! `quantile forecast_error 0.99` — routed through the cluster-capable
//! path, so it spans all members of a sharded deployment — and prints
//! the K streams drifting hardest.

use crate::commands::CmdResult;
use crate::fleet_cmd::{fmt_q, fmt_us, validate, warm_start, FleetOpts};
use sofia_datagen::stream::TensorStream;
use sofia_fleet::{CheckpointPolicy, Fleet, FleetConfig, MetricKind, Query, QueryResponse};
use sofia_net::{Client, ClusterClient, ClusterMetrics, NetStats, Server, ServerConfig, ShardMap};
use sofia_tensor::ObservedTensor;
use std::time::Duration;

/// Builds the serve-side engine config from the shared workload opts.
fn engine_config(opts: &FleetOpts) -> FleetConfig {
    FleetConfig {
        shards: opts.shards,
        queue_capacity: opts.queue,
        checkpoint: opts
            .checkpoint_dir
            .as_ref()
            .map(|dir| CheckpointPolicy::new(dir, opts.checkpoint_every)),
        evict_idle_after: opts.evict_idle,
    }
}

/// Entry point of `sofia-cli serve`.
///
/// `cluster` is the deployment spec's full endpoint list (empty for a
/// standalone server): when given, the handshake advertises the
/// deterministic round-robin [`ShardMap`] over those endpoints —
/// `opts.shards` route slots per node — so a `ClusterClient` can
/// bootstrap from any member. `advertise` is the name clients reach
/// this node by when it differs from `bind` (a server bound to
/// `0.0.0.0` or behind a hostname); the cluster membership check runs
/// against it. `empty` starts with no warm streams (cluster members
/// usually receive their streams over the wire). `slow_request_us`
/// overrides the slow-request ring threshold (`0` captures every
/// request — smoke-test mode); `None` keeps the server default.
pub fn serve(
    opts: &FleetOpts,
    bind: &str,
    advertise: Option<String>,
    recover: bool,
    cluster: &[String],
    empty: bool,
    slow_request_us: Option<u64>,
) -> CmdResult {
    validate(opts)?;
    if recover && opts.checkpoint_dir.is_none() {
        return Err("--recover requires --checkpoint-dir".into());
    }
    if recover && empty {
        return Err("--recover and --empty conflict: recovery restores the \
                    checkpointed streams, an empty server starts with none"
            .into());
    }
    // The name this node goes by in shard maps: --advertise when
    // given (multi-host deployments bind 0.0.0.0 but are reached by
    // hostname), the bind address otherwise.
    let advertised = advertise.as_deref().unwrap_or(bind);
    if !cluster.is_empty() && !cluster.iter().any(|ep| ep == advertised) {
        return Err(format!(
            "--cluster list must contain this node's advertised address `{advertised}` \
             (set --advertise when it differs from --bind)"
        )
        .into());
    }

    let fleet = if recover {
        let (fleet, n) = Fleet::recover(engine_config(opts))?;
        println!(
            "serve: recovered {n} streams from {}",
            opts.checkpoint_dir.as_ref().expect("checked").display()
        );
        fleet
    } else if empty {
        println!("serve: starting empty (streams register over the wire)");
        Fleet::new(engine_config(opts))?
    } else {
        let fleet = Fleet::new(engine_config(opts))?;
        let (models, _streams, startup_len) = warm_start(opts);
        for (i, model) in models.iter().enumerate() {
            fleet.register(&format!("stream-{i:04}"), model.handle())?;
        }
        println!(
            "serve: registered {} warm streams (startup window {startup_len}); \
             clients drive ingest from slice index {startup_len}",
            models.len()
        );
        fleet
    };

    // When a name was validated above (explicit --advertise, or a
    // cluster spec naming this node), hand the server that exact name —
    // re-deriving it from the resolved bind address could disagree
    // (`localhost` vs `127.0.0.1`). A plain standalone serve passes
    // None so the server advertises its *resolved* address (an
    // ephemeral `--bind 127.0.0.1:0` must not advertise port 0).
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        advertise: (advertise.is_some() || !cluster.is_empty()).then(|| advertised.to_string()),
        cluster: (!cluster.is_empty()).then(|| ShardMap::round_robin(cluster, opts.shards)),
        slow_request_us: slow_request_us.unwrap_or(defaults.slow_request_us),
        ..defaults
    };
    let server = Server::bind_with(bind, fleet, config)?;
    if let Some(map) = (!cluster.is_empty()).then(|| server.shard_map()) {
        println!(
            "serve: cluster member {advertised} ({} of {} route slots here)",
            map.endpoints()
                .iter()
                .filter(|ep| *ep == advertised)
                .count(),
            map.shards()
        );
    }
    println!(
        "serve: listening on {} ({} shards); send a `shutdown` frame \
         (sofia-cli client --connect {} --shutdown) to stop",
        server.local_addr(),
        server.shard_map().shards(),
        server.local_addr()
    );
    let checkpoints = server.run()?;
    println!("serve: graceful shutdown, wrote {checkpoints} final checkpoints");
    Ok(())
}

/// Parameters of one `client` invocation.
pub struct ClientOpts {
    /// Server address.
    pub connect: String,
    /// Print fleet-wide stats.
    pub stats: bool,
    /// Collect and print the cluster-wide node-health rollup
    /// (per-node [`NetStats`] plus the merged fleet view).
    pub metrics: bool,
    /// Print `--metrics` as JSON instead of the human table.
    pub json: bool,
    /// Print `--metrics` as a Prometheus text exposition.
    pub prom: bool,
    /// Reply-read timeout in seconds for the direct connection
    /// (`0` = block forever); `None` keeps the client default.
    pub timeout_secs: Option<u64>,
    /// Stream to query/ingest against.
    pub stream: Option<String>,
    /// One-line query wire form (e.g. `forecast 4`, `latest`).
    pub query: Option<String>,
    /// Ingest this many synthetic slices into `--stream` (deterministic;
    /// a smoke-test data plane, not a workload).
    pub ingest: usize,
    /// Slice dimensions for `--ingest`; must match what the serving
    /// model expects (defaults to the `serve` default of 12,10).
    pub dims: Vec<usize>,
    /// Print the K streams with the highest forecast-error p99 (0 =
    /// off). Sweeps the whole fleet with one batched quantile query
    /// through the cluster-capable path.
    pub top_drift: usize,
    /// Ask the server to shut down gracefully at the end.
    pub shutdown: bool,
}

/// Entry point of `sofia-cli client`.
pub fn client(opts: &ClientOpts) -> CmdResult {
    if opts.json && opts.prom {
        return Err("--json and --prom are mutually exclusive".into());
    }
    if (opts.json || opts.prom) && !opts.metrics {
        return Err("--json/--prom format --metrics output; add --metrics".into());
    }
    // Machine-readable metrics modes keep stdout parseable: no banner.
    let machine = opts.json || opts.prom;
    let mut client = Client::connect_as(&opts.connect, "sofia-cli")?;
    if let Some(secs) = opts.timeout_secs {
        client.set_read_timeout((secs > 0).then(|| Duration::from_secs(secs)))?;
    }
    if !machine {
        println!(
            "client: connected to {} ({} shards in the handshake shard map)",
            opts.connect,
            client.shard_map().shards()
        );
    }

    if opts.stats {
        let stats = client.stats()?;
        println!(
            "stats: {} resident streams over {} shards, {} steps applied, \
             {} queries answered ({} batched round-trips), {} dropped",
            stats.streams(),
            stats.shards.len(),
            stats.steps(),
            stats.queries().total(),
            stats.query_batches(),
            stats.dropped()
        );
        let latency = stats.ingest_latency();
        let drift = stats.forecast_error();
        println!(
            "stats: ingest latency p50 {} / p99 {} / p999 {} over {} steps; \
             forecast drift p50 {} / p99 {} over {} residuals",
            fmt_us(latency.p50()),
            fmt_us(latency.p99()),
            fmt_us(latency.p999()),
            latency.count(),
            fmt_q(drift.p50()),
            fmt_q(drift.p99()),
            drift.count()
        );
    }

    if opts.metrics {
        // The rollup spans every cluster member the handshake map
        // names, so point-and-ask works against any seed node.
        let mut cluster = ClusterClient::connect_as(&opts.connect, "sofia-cli")?;
        let report = cluster.metrics()?;
        if opts.json {
            print_metrics_json(&report);
        } else if opts.prom {
            print_metrics_prom(&report);
        } else {
            print_metrics_human(&report);
        }
    }

    if opts.ingest > 0 {
        let stream = opts.stream.as_deref().ok_or("--ingest needs --stream")?;
        // Deterministic smoke slices; real deployments ship their own.
        let s = sofia_datagen::seasonal::SeasonalStream::paper_fig2(&opts.dims, 2, 4, 77);
        let slices: Vec<ObservedTensor> = (0..opts.ingest)
            .map(|t| ObservedTensor::fully_observed(s.clean_slice(t)))
            .collect();
        let retries = client.ingest_blocking(stream, slices)?;
        client.flush()?;
        println!(
            "ingest: {} slices applied to `{stream}` ({retries} backpressure \
             retries); flush makes them visible to every later query",
            opts.ingest
        );
    }

    if let Some(query_line) = &opts.query {
        let stream = opts.stream.as_deref().ok_or("--query needs --stream")?;
        let query = Query::from_wire(query_line)?;
        match client.query(stream, query)? {
            QueryResponse::Latest(out) => match out {
                Some(step) => println!(
                    "latest: |x| = {:.4} over {:?} (outliers: {})",
                    step.completed.frobenius_norm(),
                    step.completed.shape().dims(),
                    step.outliers.is_some()
                ),
                None => println!("latest: none (stream has not stepped yet)"),
            },
            QueryResponse::Forecast(fc) => match fc {
                Some(f) => println!(
                    "forecast: |x| = {:.4} over {:?}",
                    f.frobenius_norm(),
                    f.shape().dims()
                ),
                None => println!("forecast: none (model does not forecast)"),
            },
            QueryResponse::OutlierMask(m) => match m {
                Some(mask) => println!(
                    "outlier-mask: {} of {} entries flagged",
                    (0..mask.shape().len())
                        .filter(|&i| mask.is_observed_flat(i))
                        .count(),
                    mask.shape().len()
                ),
                None => println!("outlier-mask: none"),
            },
            QueryResponse::StreamStats(stats) => println!(
                "stream-stats: `{}` served by {} on shard {}, {} steps, \
                 latency p50 {} / p99 {}, drift p99 {}",
                stats.stream,
                stats.model,
                stats.shard,
                stats.steps,
                fmt_us(stats.ingest_latency.p50()),
                fmt_us(stats.ingest_latency.p99()),
                fmt_q(stats.forecast_error.p99())
            ),
            QueryResponse::Quantile(value) => match value {
                Some(v) => println!("quantile: {v}"),
                None => println!("quantile: none (no observations yet)"),
            },
        }
    }

    if opts.top_drift > 0 {
        top_drift(&opts.connect, opts.top_drift)?;
    }

    if opts.shutdown {
        client.shutdown_server()?;
        println!("shutdown: server acknowledged and is draining");
    }
    Ok(())
}

/// The `--top-drift K` sweep: one `quantile forecast_error 0.99` per
/// warm stream, batched and routed through [`ClusterClient`] so the
/// sweep spans every member of a sharded deployment, then the K
/// hardest-drifting streams printed in descending order.
///
/// Stream ids follow the `serve` warm-start naming (`stream-0000`,
/// `stream-0001`, ...); streams a deployment registered under other
/// names simply come back as routing errors and are skipped, as are
/// streams with no residuals yet.
fn top_drift(seed: &str, k: usize) -> CmdResult {
    let mut cluster = ClusterClient::connect_as(seed, "sofia-cli")?;
    let stats = cluster.stats()?;
    // Evicted streams are still registered (and lazily restored by a
    // query), so the sweep covers them too.
    let total = stats.streams() + stats.evicted();
    if total == 0 {
        println!("top-drift: no streams registered");
        return Ok(());
    }
    let ids: Vec<String> = (0..total).map(|i| format!("stream-{i:04}")).collect();
    let requests: Vec<(&str, Query)> = ids
        .iter()
        .map(|id| {
            (
                id.as_str(),
                Query::Quantile {
                    metric: MetricKind::ForecastError,
                    q: 0.99,
                },
            )
        })
        .collect();
    let replies = cluster.query_batch(&requests)?;

    let mut ranked: Vec<(f64, &str)> = Vec::new();
    let mut skipped = 0usize;
    for (id, reply) in ids.iter().zip(replies) {
        match reply {
            Ok(QueryResponse::Quantile(Some(v))) if v.is_finite() => ranked.push((v, id)),
            _ => skipped += 1,
        }
    }
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!(
        "top-drift: forecast-error p99 across {} streams ({} without \
         residuals or unknown)",
        total, skipped
    );
    for (rank, (v, id)) in ranked.iter().take(k).enumerate() {
        println!("top-drift: #{:<2} {id}  p99 {}", rank + 1, fmt_q(Some(*v)));
    }
    Ok(())
}

/// Slow-request records printed per view before eliding the rest —
/// the ring can legitimately hold tens of thousands in smoke mode.
const MAX_SLOW_PRINTED: usize = 16;

/// The default `--metrics` view: one row per node, then the fleet-wide
/// merge (counters summed, highwater maxed, latency sketches merged).
fn print_metrics_human(report: &ClusterMetrics) {
    for node in &report.nodes {
        let ep = node.endpoint.as_deref().unwrap_or("?");
        println!(
            "metrics: node {ep}: {} accepted / {} closed / {} active; \
             {} frames decoded, {} decode errors; settle p99 {} over {} requests",
            node.accepted,
            node.closed,
            node.active,
            node.frames_decoded,
            node.decode_errors,
            fmt_us(node.settle_latency.p99()),
            node.settle_latency.count()
        );
    }
    let m = report.merged();
    println!(
        "metrics: fleet: {} accepted / {} closed / {} active connections \
         across {} node(s)",
        m.accepted,
        m.closed,
        m.active,
        report.nodes.len()
    );
    println!(
        "metrics: fleet: {} frames decoded, {} decode errors, \
         {} read-interest drops, write-buffer highwater {} B",
        m.frames_decoded, m.decode_errors, m.read_interest_drops, m.write_buffer_highwater
    );
    println!(
        "metrics: fleet: {} poll iterations, {} wakeups",
        m.poll_iterations, m.wakeups
    );
    let lat = &m.settle_latency;
    println!(
        "metrics: settle latency p50 {} / p99 {} / p999 {} (mean {}) \
         over {} requests",
        fmt_us(lat.p50()),
        fmt_us(lat.p99()),
        fmt_us(lat.p999()),
        fmt_us(lat.moments().mean()),
        lat.count()
    );
    println!(
        "metrics: slow ring: {} record(s) at/over the {} µs threshold \
         ({} evicted)",
        m.slow.len(),
        m.slow_threshold_us,
        m.slow_dropped
    );
    for (i, r) in m.slow.iter().take(MAX_SLOW_PRINTED).enumerate() {
        println!(
            "metrics: slow #{:<2} {} {} conn {} {} µs",
            i + 1,
            r.verb,
            r.stream.as_deref().unwrap_or("-"),
            r.conn,
            r.latency_us
        );
    }
    if m.slow.len() > MAX_SLOW_PRINTED {
        println!(
            "metrics: slow ... {} more (use --json for all)",
            m.slow.len() - MAX_SLOW_PRINTED
        );
    }
}

/// A string as a JSON string literal (the escapes the wire can carry:
/// stream ids are percent-encoded upstream, endpoints are addresses).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An optional latency quantile as a JSON number or `null`.
fn jus(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v:.3}"),
        _ => "null".into(),
    }
}

/// One [`NetStats`] as a JSON object, indented for the report layout.
fn json_stats(s: &NetStats, pad: &str) -> String {
    let lat = &s.settle_latency;
    let slow: Vec<String> = s
        .slow
        .iter()
        .map(|r| {
            format!(
                "{{ \"verb\": {}, \"stream\": {}, \"conn\": {}, \"latency_us\": {} }}",
                jstr(&r.verb),
                r.stream.as_deref().map_or("null".into(), jstr),
                r.conn,
                r.latency_us
            )
        })
        .collect();
    let endpoint = s.endpoint.as_deref().map_or("null".into(), jstr);
    format!(
        "{{\n\
         {pad}  \"endpoint\": {endpoint},\n\
         {pad}  \"accepted\": {}, \"closed\": {}, \"active\": {},\n\
         {pad}  \"frames_decoded\": {}, \"decode_errors\": {},\n\
         {pad}  \"read_interest_drops\": {}, \"write_buffer_highwater\": {},\n\
         {pad}  \"poll_iterations\": {}, \"wakeups\": {},\n\
         {pad}  \"settle_latency_us\": {{ \"count\": {}, \"mean\": {}, \
         \"p50\": {}, \"p99\": {}, \"p999\": {} }},\n\
         {pad}  \"slow_threshold_us\": {}, \"slow_dropped\": {},\n\
         {pad}  \"slow\": [{}]\n\
         {pad}}}",
        s.accepted,
        s.closed,
        s.active,
        s.frames_decoded,
        s.decode_errors,
        s.read_interest_drops,
        s.write_buffer_highwater,
        s.poll_iterations,
        s.wakeups,
        lat.count(),
        jus(lat.moments().mean()),
        jus(lat.p50()),
        jus(lat.p99()),
        jus(lat.p999()),
        s.slow_threshold_us,
        s.slow_dropped,
        slow.join(", "),
    )
}

/// `--metrics --json`: the full rollup — every node's snapshot plus
/// the merged fleet view — as one JSON document on stdout.
fn print_metrics_json(report: &ClusterMetrics) {
    let nodes: Vec<String> = report
        .nodes
        .iter()
        .map(|n| format!("    {}", json_stats(n, "    ")))
        .collect();
    println!(
        "{{\n  \"nodes\": [\n{}\n  ],\n  \"merged\": {}\n}}",
        nodes.join(",\n"),
        json_stats(&report.merged(), "  ")
    );
}

/// One Prometheus series: metric name, help text, field reader.
type PromSeries = (&'static str, &'static str, fn(&NetStats) -> u64);

/// `--metrics --prom`: Prometheus text exposition, one series per node
/// keyed by the `endpoint` label. Only per-node series are emitted —
/// Prometheus aggregates across label values itself, and exporting the
/// merged view alongside would double-count on `sum()`.
fn print_metrics_prom(report: &ClusterMetrics) {
    let counters: &[PromSeries] = &[
        (
            "sofia_net_connections_accepted_total",
            "Connections handed from the acceptor to the event loop.",
            |s| s.accepted,
        ),
        (
            "sofia_net_connections_closed_total",
            "Connections torn down (EOF, protocol fault, drain, reap).",
            |s| s.closed,
        ),
        (
            "sofia_net_frames_decoded_total",
            "Complete frames handed to the request parser.",
            |s| s.frames_decoded,
        ),
        (
            "sofia_net_decode_errors_total",
            "Off-protocol input: bad frames, non-UTF-8, malformed bodies.",
            |s| s.decode_errors,
        ),
        (
            "sofia_net_read_interest_drops_total",
            "Backpressure transitions that paused reading a connection.",
            |s| s.read_interest_drops,
        ),
        (
            "sofia_net_poll_iterations_total",
            "Poll calls across the acceptor and all event-loop workers.",
            |s| s.poll_iterations,
        ),
        (
            "sofia_net_wakeups_total",
            "Polls interrupted by an explicit cross-thread wake.",
            |s| s.wakeups,
        ),
        (
            "sofia_net_slow_requests_dropped_total",
            "Slow-request records evicted from the bounded ring.",
            |s| s.slow_dropped,
        ),
    ];
    for (name, help, read) in counters {
        println!("# HELP {name} {help}");
        println!("# TYPE {name} counter");
        for node in &report.nodes {
            let ep = node.endpoint.as_deref().unwrap_or("?");
            println!("{name}{{endpoint={}}} {}", jstr(ep), read(node));
        }
    }
    let gauges: &[PromSeries] = &[
        (
            "sofia_net_connections_active",
            "Connections currently owned by event-loop workers.",
            |s| s.active,
        ),
        (
            "sofia_net_write_buffer_highwater_bytes",
            "Largest buffered-outgoing-bytes peak any connection reached.",
            |s| s.write_buffer_highwater,
        ),
        (
            "sofia_net_slow_request_threshold_microseconds",
            "Slow-request capture threshold.",
            |s| s.slow_threshold_us,
        ),
        (
            "sofia_net_slow_requests_ringsize",
            "Slow-request records currently held in the ring.",
            |s| s.slow.len() as u64,
        ),
    ];
    for (name, help, read) in gauges {
        println!("# HELP {name} {help}");
        println!("# TYPE {name} gauge");
        for node in &report.nodes {
            let ep = node.endpoint.as_deref().unwrap_or("?");
            println!("{name}{{endpoint={}}} {}", jstr(ep), read(node));
        }
    }
    let name = "sofia_net_settle_latency_microseconds";
    println!("# HELP {name} Wire-to-settle latency of settled requests.");
    println!("# TYPE {name} summary");
    for node in &report.nodes {
        let ep = node.endpoint.as_deref().unwrap_or("?");
        let lat = &node.settle_latency;
        for (q, v) in [
            ("0.5", lat.p50()),
            ("0.99", lat.p99()),
            ("0.999", lat.p999()),
        ] {
            if let Some(v) = v {
                println!("{name}{{endpoint={},quantile=\"{q}\"}} {v}", jstr(ep));
            }
        }
        println!(
            "{name}_sum{{endpoint={}}} {}",
            jstr(ep),
            lat.moments().sum()
        );
        println!("{name}_count{{endpoint={}}} {}", jstr(ep), lat.count());
    }
}
