//! Dense row-major N-way tensors of `f64`.

use crate::shape::Shape;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A dense N-way tensor stored in row-major order.
///
/// This is the workhorse value type of the workspace: streaming subtensors
/// `Y_t`, outlier tensors `O_t`, error-scale tensors `Σ̂_t`, and
/// reconstructions `X̂_t` are all `DenseTensor`s.
///
/// ```
/// use sofia_tensor::{DenseTensor, Shape};
///
/// let mut x = DenseTensor::zeros(Shape::new(&[2, 3]));
/// x.set(&[1, 2], 4.0);
/// assert_eq!(x.get(&[1, 2]), 4.0);
/// assert_eq!(x.frobenius_norm(), 4.0);
/// let doubled = &x + &x;
/// assert_eq!(doubled.get(&[1, 2]), 8.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct DenseTensor {
    shape: Shape,
    data: Vec<f64>,
}

impl DenseTensor {
    /// All-zero tensor of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        let len = shape.len();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Tensor with every entry set to `value`.
    pub fn full(shape: Shape, value: f64) -> Self {
        let len = shape.len();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// Builds a tensor from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {} ({} entries)",
            data.len(),
            shape,
            shape.len()
        );
        Self { shape, data }
    }

    /// Builds a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        let mut idx = vec![0usize; shape.order()];
        for off in 0..shape.len() {
            shape.unravel_into(off, &mut idx);
            data.push(f(&idx));
        }
        Self { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero entries (never true for valid shapes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major data slice.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Entry at a multi-index.
    #[inline]
    pub fn get(&self, index: &[usize]) -> f64 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the entry at a multi-index.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f64) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Entry at a flat row-major offset.
    #[inline]
    pub fn get_flat(&self, offset: usize) -> f64 {
        self.data[offset]
    }

    /// Sets the entry at a flat row-major offset.
    #[inline]
    pub fn set_flat(&mut self, offset: usize, value: f64) {
        self.data[offset] = value;
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied to every entry.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise (Hadamard) product `self ⊛ other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.assert_same_shape(other);
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Self {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Frobenius norm `‖X‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum entry value (NaN entries are ignored; returns -inf when all
    /// entries are NaN).
    pub fn max(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum entry value (NaN entries are ignored).
    pub fn min(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum absolute entry value.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).fold(0.0f64, f64::max)
    }

    /// `self += alpha * other` (axpy), in place.
    pub fn axpy(&mut self, alpha: f64, other: &Self) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every entry by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Stacks `(N-1)`-way slices into an N-way tensor whose **last** mode
    /// indexes the slices. This is how streaming subtensors
    /// `Y_1, …, Y_t` are concatenated into the batch tensor
    /// `Y_init` of Algorithm 1.
    ///
    /// # Panics
    /// Panics if `slices` is empty or shapes disagree.
    pub fn stack(slices: &[&DenseTensor]) -> DenseTensor {
        assert!(!slices.is_empty(), "cannot stack zero slices");
        let base = slices[0].shape().clone();
        for s in slices {
            assert_eq!(s.shape(), &base, "all stacked slices must share a shape");
        }
        let out_shape = base.with_appended_mode(slices.len());
        let mut out = DenseTensor::zeros(out_shape);
        // Row-major with time appended as the last mode means entries of a
        // slice are strided by the number of slices.
        let t_count = slices.len();
        for (t, s) in slices.iter().enumerate() {
            for (off, &v) in s.data().iter().enumerate() {
                out.data[off * t_count + t] = v;
            }
        }
        out
    }

    /// Extracts the `(N-1)`-way slice at position `t` of the **last** mode.
    /// Inverse of [`DenseTensor::stack`].
    pub fn slice_last_mode(&self, t: usize) -> DenseTensor {
        let n = self.shape.order();
        assert!(n >= 2, "need at least 2 modes to slice");
        let t_count = self.shape.dim(n - 1);
        assert!(t < t_count, "slice index out of bounds");
        let out_shape = self.shape.without_mode(n - 1);
        let mut data = Vec::with_capacity(out_shape.len());
        for off in 0..out_shape.len() {
            data.push(self.data[off * t_count + t]);
        }
        DenseTensor::from_vec(out_shape, data)
    }

    fn assert_same_shape(&self, other: &Self) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
    }
}

impl fmt::Debug for DenseTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DenseTensor({}, ", self.shape)?;
        if self.len() <= 16 {
            write!(f, "{:?})", self.data)
        } else {
            write!(f, "[{} entries])", self.len())
        }
    }
}

impl Add<&DenseTensor> for &DenseTensor {
    type Output = DenseTensor;
    fn add(self, rhs: &DenseTensor) -> DenseTensor {
        self.assert_same_shape(rhs);
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect();
        DenseTensor {
            shape: self.shape.clone(),
            data,
        }
    }
}

impl Sub<&DenseTensor> for &DenseTensor {
    type Output = DenseTensor;
    fn sub(self, rhs: &DenseTensor) -> DenseTensor {
        self.assert_same_shape(rhs);
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a - b)
            .collect();
        DenseTensor {
            shape: self.shape.clone(),
            data,
        }
    }
}

impl AddAssign<&DenseTensor> for DenseTensor {
    fn add_assign(&mut self, rhs: &DenseTensor) {
        self.assert_same_shape(rhs);
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&DenseTensor> for DenseTensor {
    fn sub_assign(&mut self, rhs: &DenseTensor) {
        self.assert_same_shape(rhs);
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &DenseTensor {
    type Output = DenseTensor;
    fn mul(self, rhs: f64) -> DenseTensor {
        self.map(|v| v * rhs)
    }
}

impl Neg for &DenseTensor {
    type Output = DenseTensor;
    fn neg(self) -> DenseTensor {
        self.map(|v| -v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t123() -> DenseTensor {
        DenseTensor::from_vec(Shape::new(&[2, 3]), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn zeros_and_full() {
        let z = DenseTensor::zeros(Shape::new(&[2, 2]));
        assert_eq!(z.sum(), 0.0);
        let f = DenseTensor::full(Shape::new(&[2, 2]), 3.0);
        assert_eq!(f.sum(), 12.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = DenseTensor::zeros(Shape::new(&[2, 3, 4]));
        t.set(&[1, 2, 3], 9.5);
        assert_eq!(t.get(&[1, 2, 3]), 9.5);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn from_fn_matches_indices() {
        let t = DenseTensor::from_fn(Shape::new(&[3, 4]), |idx| (idx[0] * 10 + idx[1]) as f64);
        assert_eq!(t.get(&[2, 3]), 23.0);
        assert_eq!(t.get(&[0, 1]), 1.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = t123();
        let b = t123();
        let sum = &a + &b;
        assert_eq!(sum.get(&[1, 2]), 12.0);
        let diff = &sum - &a;
        assert_eq!(diff.data(), a.data());
        let scaled = &a * 2.0;
        assert_eq!(scaled.get(&[0, 1]), 4.0);
        let neg = -&a;
        assert_eq!(neg.get(&[0, 0]), -1.0);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = t123();
        let h = a.hadamard(&a);
        assert_eq!(h.data(), &[1.0, 4.0, 9.0, 16.0, 25.0, 36.0]);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = t123();
        let expected = (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0 + 36.0).sqrt();
        assert!((a.frobenius_norm() - expected).abs() < 1e-12);
    }

    #[test]
    fn max_min_and_max_abs() {
        let t = DenseTensor::from_vec(Shape::new(&[4]), vec![-7.0, 2.0, 5.0, -1.0]);
        assert_eq!(t.max(), 5.0);
        assert_eq!(t.min(), -7.0);
        assert_eq!(t.max_abs(), 7.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = t123();
        let b = t123();
        a.axpy(2.0, &b);
        assert_eq!(a.get(&[0, 0]), 3.0);
        a.scale(0.5);
        assert_eq!(a.get(&[0, 0]), 1.5);
    }

    #[test]
    fn stack_and_slice_roundtrip() {
        let s0 = t123();
        let s1 = s0.map(|v| v + 100.0);
        let stacked = DenseTensor::stack(&[&s0, &s1]);
        assert_eq!(stacked.shape().dims(), &[2, 3, 2]);
        assert_eq!(stacked.get(&[1, 2, 0]), 6.0);
        assert_eq!(stacked.get(&[1, 2, 1]), 106.0);
        let back0 = stacked.slice_last_mode(0);
        let back1 = stacked.slice_last_mode(1);
        assert_eq!(back0.data(), s0.data());
        assert_eq!(back1.data(), s1.data());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = t123();
        let b = DenseTensor::zeros(Shape::new(&[3, 2]));
        let _ = &a + &b;
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        DenseTensor::from_vec(Shape::new(&[2, 2]), vec![1.0]);
    }

    #[test]
    fn map_does_not_mutate_original() {
        let a = t123();
        let b = a.map(|v| v * 3.0);
        assert_eq!(a.get(&[0, 0]), 1.0);
        assert_eq!(b.get(&[0, 0]), 3.0);
    }
}
