//! Streaming evaluation runner.
//!
//! Drives any [`StreamingFactorizer`] over a corrupted
//! [`TensorStream`] according to the paper's protocol: corrupt each clean
//! slice with the `(X, Y, Z)` setting, hand it to the method, time the
//! step, and score the completed reconstruction against the *clean* truth.

use crate::metrics::{StepRecord, StreamSummary};
use sofia_core::traits::StreamingFactorizer;
use sofia_datagen::corrupt::Corruptor;
use sofia_datagen::stream::TensorStream;
use sofia_tensor::norms::relative_error;
use sofia_tensor::DenseTensor;
use std::time::Instant;

/// The window of a streaming run.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// First stream index handed to the method (typically `t_i`, right
    /// after the initialization window).
    pub start: usize,
    /// One past the last stream index.
    pub end: usize,
}

/// Runs `method` over `stream` corrupted by `corruptor`, recording per-step
/// NRE (against clean truth) and wall time.
pub fn run_stream(
    method: &mut dyn StreamingFactorizer,
    stream: &dyn TensorStream,
    corruptor: &Corruptor,
    config: StreamConfig,
) -> StreamSummary {
    assert!(config.start < config.end, "empty stream window");
    let mut steps = Vec::with_capacity(config.end - config.start);
    for t in config.start..config.end {
        let clean = stream.clean_slice(t);
        let observed = corruptor.corrupt(&clean, t);
        let started = Instant::now();
        let out = method.step(&observed);
        let elapsed = started.elapsed();
        steps.push(StepRecord {
            t,
            nre: relative_error(&out.completed, &clean),
            elapsed,
        });
    }
    StreamSummary {
        method: method.name().to_string(),
        steps,
    }
}

/// Result of a forecasting evaluation.
#[derive(Debug, Clone)]
pub struct ForecastResult {
    /// Method name.
    pub method: String,
    /// Per-horizon `(h, normalized error)` pairs.
    pub per_horizon: Vec<(usize, f64)>,
}

impl ForecastResult {
    /// Average forecasting error over the horizon (the paper's AFE).
    pub fn afe(&self) -> f64 {
        if self.per_horizon.is_empty() {
            return f64::NAN;
        }
        self.per_horizon.iter().map(|(_, e)| e).sum::<f64>() / self.per_horizon.len() as f64
    }
}

/// Scores `h`-step-ahead forecasts of `method` (which must support
/// forecasting) against the clean continuation of `stream` starting at
/// `t_end` (the index of the first forecasted slice).
pub fn evaluate_forecasts(
    method: &dyn StreamingFactorizer,
    stream: &dyn TensorStream,
    t_end: usize,
    horizon: usize,
) -> Option<ForecastResult> {
    let mut per_horizon = Vec::with_capacity(horizon);
    for h in 1..=horizon {
        let fc: DenseTensor = method.forecast(h)?;
        let truth = stream.clean_slice(t_end + h - 1);
        per_horizon.push((h, relative_error(&fc, &truth)));
    }
    Some(ForecastResult {
        method: method.name().to_string(),
        per_horizon,
    })
}

/// Materializes the corrupted start-up window `t ∈ [0, t_i)` handed to
/// every method before streaming begins.
pub fn startup_window(
    stream: &dyn TensorStream,
    corruptor: &Corruptor,
    t_init: usize,
) -> Vec<sofia_tensor::ObservedTensor> {
    (0..t_init)
        .map(|t| corruptor.corrupt(&stream.clean_slice(t), t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_core::traits::StepOutput;
    use sofia_datagen::corrupt::CorruptionConfig;
    use sofia_tensor::{ObservedTensor, Shape};

    /// Predicts a constant tensor; forecasts the same.
    struct ConstantMethod(f64);
    impl StreamingFactorizer for ConstantMethod {
        fn name(&self) -> &'static str {
            "Constant"
        }
        fn step(&mut self, slice: &ObservedTensor) -> StepOutput {
            StepOutput {
                completed: DenseTensor::full(slice.shape().clone(), self.0),
                outliers: None,
            }
        }
        fn forecast(&self, _h: usize) -> Option<DenseTensor> {
            Some(DenseTensor::full(Shape::new(&[2, 2]), self.0))
        }
    }

    struct ConstantStream(Shape);
    impl TensorStream for ConstantStream {
        fn slice_shape(&self) -> &Shape {
            &self.0
        }
        fn period(&self) -> usize {
            2
        }
        fn clean_slice(&self, _t: usize) -> DenseTensor {
            DenseTensor::full(self.0.clone(), 2.0)
        }
    }

    #[test]
    fn perfect_method_has_zero_rae() {
        let stream = ConstantStream(Shape::new(&[2, 2]));
        let corruptor = Corruptor::new(CorruptionConfig::from_percents(0, 0, 0.0), 2.0, 1);
        let mut method = ConstantMethod(2.0);
        let summary = run_stream(
            &mut method,
            &stream,
            &corruptor,
            StreamConfig { start: 2, end: 8 },
        );
        assert_eq!(summary.steps.len(), 6);
        assert!(summary.rae() < 1e-12);
        assert_eq!(summary.method, "Constant");
    }

    #[test]
    fn wrong_method_has_unit_rae() {
        let stream = ConstantStream(Shape::new(&[2, 2]));
        let corruptor = Corruptor::new(CorruptionConfig::from_percents(50, 10, 3.0), 2.0, 1);
        let mut method = ConstantMethod(0.0);
        let summary = run_stream(
            &mut method,
            &stream,
            &corruptor,
            StreamConfig { start: 0, end: 4 },
        );
        // Error is computed against CLEAN truth, so corruption of the
        // inputs does not change the score of a constant-zero predictor.
        assert!((summary.rae() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forecasts_scored_against_clean_truth() {
        let stream = ConstantStream(Shape::new(&[2, 2]));
        let method = ConstantMethod(2.0);
        let res = evaluate_forecasts(&method, &stream, 10, 5).unwrap();
        assert_eq!(res.per_horizon.len(), 5);
        assert!(res.afe() < 1e-12);
    }

    #[test]
    fn startup_window_length() {
        let stream = ConstantStream(Shape::new(&[2, 2]));
        let corruptor = Corruptor::new(CorruptionConfig::from_percents(20, 0, 0.0), 2.0, 3);
        let w = startup_window(&stream, &corruptor, 7);
        assert_eq!(w.len(), 7);
    }

    #[test]
    #[should_panic(expected = "empty stream window")]
    fn empty_window_panics() {
        let stream = ConstantStream(Shape::new(&[2, 2]));
        let corruptor = Corruptor::new(CorruptionConfig::from_percents(0, 0, 0.0), 2.0, 1);
        let mut method = ConstantMethod(1.0);
        run_stream(
            &mut method,
            &stream,
            &corruptor,
            StreamConfig { start: 5, end: 5 },
        );
    }
}
