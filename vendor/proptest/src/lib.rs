//! A self-contained stand-in for the [`proptest`] property-testing crate
//! (the build environment has no crates.io access).
//!
//! Supported surface — exactly what this workspace's tests use:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings and an
//!   optional `#![proptest_config(...)]` inner attribute;
//! * [`strategy::Strategy`] with numeric range strategies
//!   (`0u64..1000`, `-5.0f64..5.0`, …) and
//!   [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`test_runner::ProptestConfig`] with
//!   [`with_cases`](test_runner::ProptestConfig::with_cases).
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the generated inputs printed, which is enough to reproduce (all
//! sampling is deterministic in the test name and case index).
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Real proptest separates strategies from value trees to support
    /// shrinking; this stand-in samples directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector strategy: `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Test-runner configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the full suite fast
            // while still exercising a healthy spread of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Deterministic per-(test, case) RNG so failures reproduce exactly.
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    rand::rngs::SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Asserts a property holds; prints the message and panics otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` times over freshly sampled inputs, panicking (with the
/// inputs printed) on the first failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::__case_rng(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        concat!(
                            "proptest case ", "{}", " of `", stringify!($name),
                            "` failed with inputs:",
                            $(" ", stringify!($arg), " = {:?}",)*
                        ),
                        case, $(&$arg,)*
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of real proptest's `prop` module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0usize..5, 2..4)) {
            prop_assert!(v.len() >= 2 && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_form_parses(seed in 0u64..100) {
            prop_assert!(seed < 100);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a: f64 = crate::__case_rng("t", 3).gen();
        let b: f64 = crate::__case_rng("t", 3).gen();
        assert_eq!(a.to_bits(), b.to_bits());
        let c: f64 = crate::__case_rng("t", 4).gen();
        assert_ne!(a.to_bits(), c.to_bits());
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        // No `#[test]` on the inner property: it is driven by hand here.
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
