//! The model slot held by a shard: any [`StreamingFactorizer`] behind
//! **one uniform handle**, with an optional snapshot capability.
//!
//! Earlier revisions kept a two-variant enum (`Sofia` vs `Dyn`) so the
//! durability layer could reach the one concrete type it knew how to
//! serialize. With the v2 checkpoint envelope
//! ([`sofia_core::snapshot`]) durability is a *capability*, not a type:
//! the handle carries the model as a trait object plus an optional
//! [`SnapshotModel`] view, and one code path serves SOFIA, durable
//! baselines, and transient mocks alike.
//!
//! The handle also owns the **generic applied-steps counter**: every
//! [`ModelHandle::step`] increments it, it is seeded from the envelope on
//! restore, and it is what checkpoint cadence, eviction bookkeeping, and
//! `StreamStats::steps` report — uniformly across model kinds (SOFIA's
//! internal counter used to be the only source, leaving baselines stuck
//! at 0).

use sofia_core::snapshot::{self, SnapshotModel};
use sofia_core::traits::{StepOutput, StreamingFactorizer};
use sofia_core::Sofia;
use sofia_tensor::{DenseTensor, ObservedTensor};

/// Internal unification of "served model" and "maybe snapshot-capable".
///
/// Rust has no way to ask a `Box<dyn StreamingFactorizer>` whether its
/// concrete type *also* implements [`SnapshotModel`], so the capability
/// is captured at construction time by wrapping the concrete type in one
/// of two adapters below.
trait Served: Send {
    fn factorizer(&self) -> &dyn StreamingFactorizer;
    fn factorizer_mut(&mut self) -> &mut dyn StreamingFactorizer;
    fn snapshot_view(&self) -> Option<&dyn SnapshotModel>;
}

/// A served model without snapshot support.
struct Transient<M>(M);

impl<M: StreamingFactorizer + Send> Served for Transient<M> {
    fn factorizer(&self) -> &dyn StreamingFactorizer {
        &self.0
    }
    fn factorizer_mut(&mut self) -> &mut dyn StreamingFactorizer {
        &mut self.0
    }
    fn snapshot_view(&self) -> Option<&dyn SnapshotModel> {
        None
    }
}

/// An already-boxed model (the pre-envelope registration API).
impl Served for Box<dyn StreamingFactorizer + Send> {
    fn factorizer(&self) -> &dyn StreamingFactorizer {
        self.as_ref()
    }
    fn factorizer_mut(&mut self) -> &mut dyn StreamingFactorizer {
        self.as_mut()
    }
    fn snapshot_view(&self) -> Option<&dyn SnapshotModel> {
        None
    }
}

/// A served model whose state survives crashes and eviction.
struct Durable<M>(M);

impl<M: StreamingFactorizer + SnapshotModel + Send> Served for Durable<M> {
    fn factorizer(&self) -> &dyn StreamingFactorizer {
        &self.0
    }
    fn factorizer_mut(&mut self) -> &mut dyn StreamingFactorizer {
        &mut self.0
    }
    fn snapshot_view(&self) -> Option<&dyn SnapshotModel> {
        Some(&self.0)
    }
}

/// A model instance owned by a shard worker: any
/// [`StreamingFactorizer`], plus an optional snapshot capability and the
/// generic applied-steps counter.
pub struct ModelHandle {
    served: Box<dyn Served>,
    steps: u64,
}

impl ModelHandle {
    /// Serves a model **without** durability: it is stepped and queried
    /// normally but skipped by checkpointing and never evicted (evicting
    /// it would lose its state).
    pub fn serve<M: StreamingFactorizer + Send + 'static>(model: M) -> Self {
        ModelHandle {
            served: Box::new(Transient(model)),
            steps: 0,
        }
    }

    /// Serves a snapshot-capable model: it is checkpointed by the
    /// durability policy, restored by [`crate::Fleet::recover`], and
    /// eligible for idle eviction.
    pub fn durable<M: StreamingFactorizer + SnapshotModel + Send + 'static>(model: M) -> Self {
        ModelHandle {
            served: Box::new(Durable(model)),
            steps: 0,
        }
    }

    /// Wraps a SOFIA model (durable; the steps counter is seeded from the
    /// model's own state so a model restored via `sofia-cli resume` keeps
    /// its history).
    pub fn sofia(model: Sofia) -> Self {
        let steps = model.dynamic().steps() as u64;
        ModelHandle::durable(model).with_steps(steps)
    }

    /// Wraps an already-boxed factorizer (transient: the concrete type is
    /// erased, so no snapshot capability can be attached; use
    /// [`ModelHandle::durable`] when the type is known and durable).
    pub fn boxed(model: Box<dyn StreamingFactorizer + Send>) -> Self {
        ModelHandle {
            served: Box::new(model),
            steps: 0,
        }
    }

    /// Overrides the applied-steps counter (restore paths seed it from
    /// the checkpoint envelope).
    pub(crate) fn with_steps(mut self, steps: u64) -> Self {
        self.steps = steps;
        self
    }

    /// Method name, as reported by the underlying model.
    pub fn name(&self) -> &'static str {
        self.served.factorizer().name()
    }

    /// Applies one streaming step and advances the applied-steps counter
    /// (the counter only moves on a completed step: if the model panics
    /// the increment never happens, matching the quarantine semantics).
    pub fn step(&mut self, slice: &ObservedTensor) -> StepOutput {
        let out = self.served.factorizer_mut().step(slice);
        self.steps += 1;
        out
    }

    /// Forecasts `h` steps ahead, if the model supports forecasting.
    pub fn forecast(&self, h: usize) -> Option<DenseTensor> {
        self.served.factorizer().forecast(h)
    }

    /// [`ModelHandle::forecast`] behind a panic guard: a model assert
    /// (a horizon the concrete model rejects, arithmetic on exotic
    /// state) fails this one call — `Err(())` — instead of unwinding
    /// through the shard worker. Forecasting takes `&self`, so the
    /// model's state is untouched by the unwind and the stream keeps
    /// serving.
    pub(crate) fn forecast_guarded(&self, h: usize) -> Result<Option<DenseTensor>, ()> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.forecast(h))).map_err(|_| ())
    }

    /// The model's snapshot kind tag, or `None` for transient models.
    pub fn snapshot_kind(&self) -> Option<&'static str> {
        self.served.snapshot_view().map(|s| s.snapshot_kind())
    }

    /// Serializes the model as a tagged v2 checkpoint envelope, or `None`
    /// if the model has no snapshot capability.
    pub fn checkpoint_text(&self) -> Option<String> {
        let view = self.served.snapshot_view()?;
        Some(snapshot::wrap(
            view.snapshot_kind(),
            self.steps,
            &view.snapshot(),
        ))
    }

    /// Streaming steps applied so far — uniform across model kinds: the
    /// handle counts completed [`ModelHandle::step`] calls on top of
    /// whatever the checkpoint envelope (or SOFIA's own state) seeded.
    pub fn model_steps(&self) -> u64 {
        self.steps
    }
}

impl std::fmt::Debug for ModelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ModelHandle({}, {}, {} steps)",
            self.name(),
            self.snapshot_kind().unwrap_or("transient"),
            self.steps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_core::snapshot::Envelope;
    use sofia_tensor::Shape;

    /// Minimal non-SOFIA model for engine tests: echoes the observed
    /// values as the completion.
    #[derive(Debug, Clone, Default)]
    pub struct Echo;

    impl StreamingFactorizer for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn step(&mut self, slice: &ObservedTensor) -> StepOutput {
            StepOutput {
                completed: slice.values().clone(),
                outliers: None,
            }
        }
    }

    /// Echo with a (trivial) snapshot capability, for envelope tests.
    #[derive(Debug, Clone, Default)]
    struct DurableEcho;

    impl StreamingFactorizer for DurableEcho {
        fn name(&self) -> &'static str {
            "durable-echo"
        }
        fn step(&mut self, slice: &ObservedTensor) -> StepOutput {
            StepOutput {
                completed: slice.values().clone(),
                outliers: None,
            }
        }
    }

    impl SnapshotModel for DurableEcho {
        fn snapshot_kind(&self) -> &'static str {
            "durable-echo"
        }
        fn snapshot(&self) -> String {
            "durable-echo-state\n".into()
        }
    }

    // The whole point of the handle: it must be movable into shard
    // worker threads.
    const _: fn() = || {
        fn assert_send<T: Send>() {}
        assert_send::<ModelHandle>();
    };

    #[test]
    fn transient_handle_serves_and_counts_but_does_not_checkpoint() {
        let mut h = ModelHandle::boxed(Box::new(Echo));
        assert_eq!(h.name(), "echo");
        let slice = ObservedTensor::fully_observed(DenseTensor::full(Shape::new(&[2, 2]), 3.0));
        let out = h.step(&slice);
        assert_eq!(out.completed.data(), slice.values().data());
        assert!(h.forecast(1).is_none());
        assert!(h.checkpoint_text().is_none());
        assert_eq!(h.snapshot_kind(), None);
        // The generic counter moves even for transient models (this used
        // to be stuck at 0 for everything but SOFIA).
        assert_eq!(h.model_steps(), 1);
        h.step(&slice);
        assert_eq!(h.model_steps(), 2);
    }

    #[test]
    fn durable_handle_wraps_the_v2_envelope() {
        let mut h = ModelHandle::durable(DurableEcho);
        let slice = ObservedTensor::fully_observed(DenseTensor::full(Shape::new(&[2, 2]), 1.0));
        h.step(&slice);
        h.step(&slice);
        assert_eq!(h.snapshot_kind(), Some("durable-echo"));
        let text = h.checkpoint_text().expect("durable");
        let env = snapshot::parse(&text).expect("envelope");
        assert_eq!(
            env,
            Envelope {
                kind: "durable-echo".into(),
                steps: 2,
                payload: "durable-echo-state\n".into(),
            }
        );
    }

    #[test]
    fn restored_steps_seed_the_counter() {
        let h = ModelHandle::durable(DurableEcho).with_steps(41);
        assert_eq!(h.model_steps(), 41);
        let mut h = h;
        let slice = ObservedTensor::fully_observed(DenseTensor::full(Shape::new(&[1]), 0.0));
        h.step(&slice);
        assert_eq!(h.model_steps(), 42);
    }
}
