//! SOFIA hyper-parameters (Table II and §VI-A of the paper).

/// Hyper-parameters of SOFIA.
///
/// Defaults follow the paper's §VI-A: `λ₁ = λ₂ = 10⁻³`, `λ₃ = 10`,
/// `µ = 0.1`, `φ = 0.01`, tolerance `10⁻⁴`, at most 300 ALS iterations,
/// a 3-season start-up window (`t_i = 3m`), and soft-threshold decay
/// `d = 0.85`.
#[derive(Debug, Clone, PartialEq)]
pub struct SofiaConfig {
    /// Rank `R` of the CP factorization.
    pub rank: usize,
    /// Seasonal period `m` of the temporal mode.
    pub period: usize,
    /// Temporal smoothness control `λ₁` (Eq. (10)).
    pub lambda1: f64,
    /// Seasonal smoothness control `λ₂` (Eq. (10)).
    pub lambda2: f64,
    /// Outlier sparsity control `λ₃` (Eq. (10)); also seeds the error-scale
    /// tensor at `λ₃/100` (Algorithm 3, line 1).
    pub lambda3: f64,
    /// Gradient step size `µ` of the dynamic updates (Eqs. (24), (25)).
    pub mu: f64,
    /// Smoothing parameter `φ` of the error-scale tensor update (Eq. (22)).
    pub phi: f64,
    /// Convergence tolerance for the initialization loops.
    pub tol: f64,
    /// Maximum inner ALS iterations (Algorithm 2) when ALS is run to
    /// convergence in isolation.
    pub max_als_iters: usize,
    /// Maximum outer iterations of Algorithm 1.
    pub max_outer_iters: usize,
    /// ALS sweeps per outer iteration of Algorithm 1. Kept small (the
    /// default is one sweep) so that the soft-thresholding step absorbs
    /// large outliers before the warm-started ALS can chase them; this is
    /// what makes the λ₃-decay schedule effective (and what Fig. 2's
    /// hundreds of cheap outer iterations imply about the reference
    /// implementation).
    pub als_sweeps_per_outer: usize,
    /// Number of start-up seasons used for initialization (`t_i = seasons·m`;
    /// the paper uses 3, the Holt-Winters convention).
    pub init_seasons: usize,
    /// Per-round decay `d` of the soft threshold `λ₃` in Algorithm 1.
    pub lambda3_decay: f64,
}

impl SofiaConfig {
    /// Creates a configuration with the paper's default hyper-parameters.
    ///
    /// # Panics
    /// Panics if `rank` or `period` is zero.
    pub fn new(rank: usize, period: usize) -> Self {
        assert!(rank >= 1, "rank must be positive");
        assert!(period >= 1, "seasonal period must be positive");
        Self {
            rank,
            period,
            lambda1: 1e-3,
            lambda2: 1e-3,
            lambda3: 10.0,
            mu: 0.1,
            phi: 0.01,
            tol: 1e-4,
            max_als_iters: 300,
            max_outer_iters: 300,
            init_seasons: 3,
            als_sweeps_per_outer: 1,
            lambda3_decay: 0.85,
        }
    }

    /// Start-up window length `t_i = init_seasons · m`.
    pub fn startup_len(&self) -> usize {
        self.init_seasons * self.period
    }

    /// Builder-style override of `(λ₁, λ₂, λ₃)`.
    pub fn with_lambdas(mut self, l1: f64, l2: f64, l3: f64) -> Self {
        assert!(l1 >= 0.0 && l2 >= 0.0 && l3 >= 0.0, "lambdas must be ≥ 0");
        self.lambda1 = l1;
        self.lambda2 = l2;
        self.lambda3 = l3;
        self
    }

    /// Builder-style override of the gradient step size `µ`.
    pub fn with_step_size(mut self, mu: f64) -> Self {
        assert!(mu > 0.0, "step size must be positive");
        self.mu = mu;
        self
    }

    /// Builder-style override of the error-scale smoothing `φ`.
    pub fn with_phi(mut self, phi: f64) -> Self {
        assert!((0.0..=1.0).contains(&phi), "phi out of [0,1]");
        self.phi = phi;
        self
    }

    /// Builder-style override of the ALS tolerance and iteration caps.
    pub fn with_als_limits(mut self, tol: f64, max_als: usize, max_outer: usize) -> Self {
        assert!(tol > 0.0);
        self.tol = tol;
        self.max_als_iters = max_als;
        self.max_outer_iters = max_outer;
        self
    }

    /// Builder-style override of the start-up season count.
    pub fn with_init_seasons(mut self, seasons: usize) -> Self {
        assert!(seasons >= 2, "need at least 2 seasons to fit Holt-Winters");
        self.init_seasons = seasons;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SofiaConfig::new(10, 168);
        assert_eq!(c.lambda1, 1e-3);
        assert_eq!(c.lambda2, 1e-3);
        assert_eq!(c.lambda3, 10.0);
        assert_eq!(c.mu, 0.1);
        assert_eq!(c.phi, 0.01);
        assert_eq!(c.tol, 1e-4);
        assert_eq!(c.max_als_iters, 300);
        assert_eq!(c.init_seasons, 3);
        assert_eq!(c.lambda3_decay, 0.85);
        assert_eq!(c.startup_len(), 3 * 168);
    }

    #[test]
    fn builders_override() {
        let c = SofiaConfig::new(4, 24)
            .with_lambdas(0.5, 0.6, 20.0)
            .with_step_size(0.05)
            .with_phi(0.1)
            .with_als_limits(1e-6, 100, 10)
            .with_init_seasons(4);
        assert_eq!(c.lambda1, 0.5);
        assert_eq!(c.lambda2, 0.6);
        assert_eq!(c.lambda3, 20.0);
        assert_eq!(c.mu, 0.05);
        assert_eq!(c.phi, 0.1);
        assert_eq!(c.tol, 1e-6);
        assert_eq!(c.max_als_iters, 100);
        assert_eq!(c.max_outer_iters, 10);
        assert_eq!(c.startup_len(), 96);
    }

    #[test]
    #[should_panic(expected = "rank must be positive")]
    fn zero_rank_rejected() {
        SofiaConfig::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        SofiaConfig::new(3, 0);
    }

    #[test]
    #[should_panic(expected = "2 seasons")]
    fn one_season_rejected() {
        SofiaConfig::new(3, 5).with_init_seasons(1);
    }
}
