//! The CLI's on-disk stream format.
//!
//! A stream lives in a directory with two files:
//!
//! * `meta.txt` — `dims d1 d2 …` and `period m` lines;
//! * `observed.csv` — long format `t,i1,i2,…,value`, one row per observed
//!   entry (missing entries are simply absent). An optional `clean.csv`
//!   with the same layout carries ground truth for scoring.
//!
//! The format is deliberately trivial so users can produce it with any
//! tool; the parser is strict and reports line numbers on errors.

use sofia_tensor::{DenseTensor, Mask, ObservedTensor, Shape};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Stream metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Meta {
    /// Slice dimensions (non-temporal modes).
    pub dims: Vec<usize>,
    /// Seasonal period.
    pub period: usize,
}

/// Errors raised by the format parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// Human-readable description with location.
    pub message: String,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for FormatError {}

fn err(message: impl Into<String>) -> FormatError {
    FormatError {
        message: message.into(),
    }
}

impl Meta {
    /// Serializes to `meta.txt` content.
    pub fn to_text(&self) -> String {
        let dims: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        format!("dims {}\nperiod {}\n", dims.join(" "), self.period)
    }

    /// Parses `meta.txt` content.
    pub fn parse(text: &str) -> Result<Self, FormatError> {
        let mut dims = None;
        let mut period = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("dims ") {
                let parsed: Result<Vec<usize>, _> =
                    rest.split_whitespace().map(|t| t.parse()).collect();
                dims = Some(parsed.map_err(|_| err(format!("meta.txt:{}: bad dims", lineno + 1)))?);
            } else if let Some(rest) = line.strip_prefix("period ") {
                period = Some(
                    rest.trim()
                        .parse()
                        .map_err(|_| err(format!("meta.txt:{}: bad period", lineno + 1)))?,
                );
            } else {
                return Err(err(format!(
                    "meta.txt:{}: unknown line `{line}`",
                    lineno + 1
                )));
            }
        }
        let dims = dims.ok_or_else(|| err("meta.txt: missing `dims` line"))?;
        let period = period.ok_or_else(|| err("meta.txt: missing `period` line"))?;
        if dims.is_empty() || dims.contains(&0) {
            return Err(err("meta.txt: dims must be positive"));
        }
        if period == 0 {
            return Err(err("meta.txt: period must be positive"));
        }
        Ok(Meta { dims, period })
    }
}

/// Serializes slices (observed entries only) to the long CSV format.
pub fn slices_to_csv(slices: &[(usize, &ObservedTensor)]) -> String {
    let mut out = String::new();
    if let Some((_, first)) = slices.first() {
        let order = first.shape().order();
        let _ = write!(out, "t");
        for n in 0..order {
            let _ = write!(out, ",i{n}");
        }
        let _ = writeln!(out, ",value");
    }
    for &(t, slice) in slices {
        let shape = slice.shape();
        let mut idx = vec![0usize; shape.order()];
        for (off, v) in slice.observed_entries() {
            shape.unravel_into(off, &mut idx);
            let _ = write!(out, "{t}");
            for &i in &idx {
                let _ = write!(out, ",{i}");
            }
            let _ = writeln!(out, ",{v}");
        }
    }
    out
}

/// Parses the long CSV format into per-timestep observed slices
/// (t → slice), using `meta` for the slice shape. Timesteps with no rows
/// are returned as fully missing slices up to the maximum seen `t`.
pub fn csv_to_slices(text: &str, meta: &Meta) -> Result<Vec<ObservedTensor>, FormatError> {
    let shape = Shape::new(&meta.dims);
    let order = shape.order();
    let mut per_t: BTreeMap<usize, Vec<(usize, f64)>> = BTreeMap::new();
    let mut max_t = None;

    for (lineno, line) in text.lines().enumerate() {
        if lineno == 0 && line.starts_with('t') {
            continue; // header
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != order + 2 {
            return Err(err(format!(
                "line {}: expected {} fields, got {}",
                lineno + 1,
                order + 2,
                fields.len()
            )));
        }
        let t: usize = fields[0]
            .parse()
            .map_err(|_| err(format!("line {}: bad t", lineno + 1)))?;
        let mut idx = vec![0usize; order];
        for (n, f) in fields[1..1 + order].iter().enumerate() {
            idx[n] = f
                .parse()
                .map_err(|_| err(format!("line {}: bad index", lineno + 1)))?;
            if idx[n] >= meta.dims[n] {
                return Err(err(format!(
                    "line {}: index {} out of bounds for mode {n} (dim {})",
                    lineno + 1,
                    idx[n],
                    meta.dims[n]
                )));
            }
        }
        let value: f64 = fields[order + 1]
            .parse()
            .map_err(|_| err(format!("line {}: bad value", lineno + 1)))?;
        per_t
            .entry(t)
            .or_default()
            .push((shape.offset(&idx), value));
        max_t = Some(max_t.map_or(t, |m: usize| m.max(t)));
    }

    let Some(max_t) = max_t else {
        return Ok(Vec::new());
    };
    let mut slices = Vec::with_capacity(max_t + 1);
    for t in 0..=max_t {
        let mut values = DenseTensor::zeros(shape.clone());
        let mut observed = vec![false; shape.len()];
        if let Some(entries) = per_t.get(&t) {
            for &(off, v) in entries {
                values.set_flat(off, v);
                observed[off] = true;
            }
        }
        slices.push(ObservedTensor::new(
            values,
            Mask::from_vec(shape.clone(), observed),
        ));
    }
    Ok(slices)
}

/// Serializes dense (fully observed) slices to the same CSV layout.
pub fn dense_to_csv(slices: &[(usize, &DenseTensor)]) -> String {
    let observed: Vec<(usize, ObservedTensor)> = slices
        .iter()
        .map(|&(t, d)| (t, ObservedTensor::fully_observed(d.clone())))
        .collect();
    let refs: Vec<(usize, &ObservedTensor)> = observed.iter().map(|(t, o)| (*t, o)).collect();
    slices_to_csv(&refs)
}

/// A loaded stream directory: metadata, observed slices, and optional
/// clean ground truth.
pub type LoadedStream = (Meta, Vec<ObservedTensor>, Option<Vec<DenseTensor>>);

/// Loads a stream directory: `meta.txt` + `observed.csv`
/// (+ optional `clean.csv`).
pub fn load_dir(dir: &Path) -> Result<LoadedStream, FormatError> {
    let meta_text = fs::read_to_string(dir.join("meta.txt"))
        .map_err(|e| err(format!("reading meta.txt: {e}")))?;
    let meta = Meta::parse(&meta_text)?;
    let obs_text = fs::read_to_string(dir.join("observed.csv"))
        .map_err(|e| err(format!("reading observed.csv: {e}")))?;
    let observed = csv_to_slices(&obs_text, &meta)?;
    let clean = match fs::read_to_string(dir.join("clean.csv")) {
        Ok(text) => Some(
            csv_to_slices(&text, &meta)?
                .into_iter()
                .map(|o| o.values().clone())
                .collect(),
        ),
        Err(_) => None,
    };
    Ok((meta, observed, clean))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta23() -> Meta {
        Meta {
            dims: vec![2, 3],
            period: 4,
        }
    }

    #[test]
    fn meta_roundtrip() {
        let m = meta23();
        assert_eq!(Meta::parse(&m.to_text()).unwrap(), m);
    }

    #[test]
    fn meta_rejects_garbage() {
        assert!(Meta::parse("dims 2 0\nperiod 3\n").is_err());
        assert!(Meta::parse("period 3\n").is_err());
        assert!(Meta::parse("dims 2 2\n").is_err());
        assert!(Meta::parse("dims 2 2\nperiod 3\nwhat 1\n").is_err());
    }

    #[test]
    fn csv_roundtrip_with_missing() {
        let meta = meta23();
        let shape = Shape::new(&meta.dims);
        let values = DenseTensor::from_fn(shape.clone(), |idx| (idx[0] * 3 + idx[1]) as f64);
        let mask = Mask::from_vec(shape, vec![true, false, true, true, false, true]);
        let slice = ObservedTensor::new(values, mask);
        let csv = slices_to_csv(&[(0, &slice), (1, &slice)]);
        let back = csv_to_slices(&csv, &meta).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], slice);
        assert_eq!(back[1], slice);
    }

    #[test]
    fn csv_fills_gap_timesteps_as_missing() {
        let meta = meta23();
        let csv = "t,i0,i1,value\n0,0,0,1.5\n2,1,2,-3.0\n";
        let slices = csv_to_slices(csv, &meta).unwrap();
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0].count_observed(), 1);
        assert_eq!(slices[1].count_observed(), 0);
        assert_eq!(slices[2].count_observed(), 1);
        assert_eq!(slices[2].values().get(&[1, 2]), -3.0);
    }

    #[test]
    fn csv_reports_bad_lines() {
        let meta = meta23();
        assert!(csv_to_slices("t,i0,i1,value\n0,0,0\n", &meta)
            .unwrap_err()
            .message
            .contains("expected 4 fields"));
        assert!(csv_to_slices("t,i0,i1,value\n0,9,0,1.0\n", &meta)
            .unwrap_err()
            .message
            .contains("out of bounds"));
        assert!(csv_to_slices("t,i0,i1,value\n0,0,0,abc\n", &meta)
            .unwrap_err()
            .message
            .contains("bad value"));
    }

    #[test]
    fn empty_csv_gives_no_slices() {
        let meta = meta23();
        assert!(csv_to_slices("t,i0,i1,value\n", &meta).unwrap().is_empty());
    }

    #[test]
    fn load_dir_roundtrip() {
        let dir = std::env::temp_dir().join("sofia_cli_format_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let meta = meta23();
        fs::write(dir.join("meta.txt"), meta.to_text()).unwrap();
        let shape = Shape::new(&meta.dims);
        let slice = ObservedTensor::fully_observed(DenseTensor::full(shape, 2.0));
        fs::write(dir.join("observed.csv"), slices_to_csv(&[(0, &slice)])).unwrap();
        let (m2, obs, clean) = load_dir(&dir).unwrap();
        assert_eq!(m2, meta);
        assert_eq!(obs.len(), 1);
        assert!(clean.is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
