//! A self-contained, dependency-free stand-in for the [`criterion`]
//! benchmark harness (the build environment has no crates.io access).
//!
//! It implements the subset of the API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`Throughput`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple wall-clock measurement
//! loop: warm-up, then timed batches until a time budget is spent, then a
//! mean/min report per benchmark. No plotting, no statistics beyond the
//! basics; enough to compare orders of magnitude and catch regressions by
//! eye.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name benches expect.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stand-in runs one setup
/// per measured call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declared workload size, used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Total time budget for the measured phase.
    budget: Duration,
    /// Mean time per iteration, filled in by `iter`/`iter_batched`.
    mean: Duration,
    /// Fastest single iteration observed.
    min: Duration,
    /// Number of measured iterations.
    iters: u64,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            mean: Duration::ZERO,
            min: Duration::MAX,
            iters: 0,
        }
    }

    /// Measures `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run a few unmeasured iterations.
        for _ in 0..3 {
            black_box(routine());
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.budget && iters < 1_000_000 {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            if dt < self.min {
                self.min = dt;
            }
            iters += 1;
        }
        self.iters = iters.max(1);
        self.mean = total / self.iters as u32;
    }

    /// Measures `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.budget && iters < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            total += dt;
            if dt < self.min {
                self.min = dt;
            }
            iters += 1;
        }
        self.iters = iters.max(1);
        self.mean = total / self.iters as u32;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{name:<50} (no measurement)");
        return;
    }
    let mut line = format!(
        "{name:<50} mean {:>10}   min {:>10}   ({} iters)",
        fmt_duration(b.mean),
        fmt_duration(b.min),
        b.iters
    );
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 / b.mean.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("   {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("   {:.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the per-benchmark budget small: the stand-in is for smoke
        // comparisons, not publication-grade statistics.
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in is time-budgeted, not
    /// sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Runs one benchmark in the group without an input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions under one group function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, mirroring criterion's macro
/// of the same name. Ignores CLI arguments (so `cargo bench -- <filter>`
/// runs everything).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.iters > 0);
        assert!(b.mean > Duration::ZERO);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter_batched(
            || vec![1u64; 512],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.iters > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
