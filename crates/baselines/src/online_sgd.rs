//! OnlineSGD (Mardani, Mateos & Giannakis, "Subspace learning and
//! imputation for streaming big data matrices and tensors", TSP 2015).
//!
//! At each step the new slice is projected onto the current subspace by
//! least squares (the temporal weight solve), then the non-temporal
//! factors take one stochastic-gradient step against the slice residual.
//! No outlier handling, no temporal-pattern model — the method that SOFIA's
//! imputation experiments show is fast but fragile under corruption.

use crate::common::{
    damped_sgd_step, parse_factors, push_factors, reconstruct_slice, solve_temporal_weights,
    warm_start,
};
use sofia_core::checkpoint::CheckpointError;
use sofia_core::snapshot::wire::{parse_f64s, parse_usizes, push_f64s};
use sofia_core::snapshot::{RestoreModel, SnapshotModel};
use sofia_core::traits::{StepOutput, StreamingFactorizer};
use sofia_tensor::{Matrix, ObservedTensor};

/// Streaming CP factorization/completion by projected-LS + SGD.
#[derive(Debug, Clone)]
pub struct OnlineSgd {
    factors: Vec<Matrix>,
    mu: f64,
    steps: usize,
}

impl OnlineSgd {
    /// Creates a model from explicit starting factors.
    pub fn new(factors: Vec<Matrix>, mu: f64) -> Self {
        assert!(!factors.is_empty());
        assert!(mu > 0.0, "step size must be positive");
        Self {
            factors,
            mu,
            steps: 0,
        }
    }

    /// Warm-starts the subspace by batch ALS on a start-up window, as the
    /// evaluation protocol grants every method (paper §VI-A).
    pub fn init(startup: &[ObservedTensor], rank: usize, mu: f64, seed: u64) -> Self {
        let (factors, _) = warm_start(startup, rank, 100, seed);
        Self::new(factors, mu)
    }

    /// Current non-temporal factors.
    pub fn factors(&self) -> &[Matrix] {
        &self.factors
    }
}

impl StreamingFactorizer for OnlineSgd {
    fn name(&self) -> &'static str {
        "OnlineSGD"
    }

    fn step(&mut self, slice: &ObservedTensor) -> StepOutput {
        // 1. Project the slice onto the subspace.
        let w = solve_temporal_weights(&self.factors, slice);
        // 2. SGD step on the factors at fixed w.
        damped_sgd_step(&mut self.factors, slice, &w, self.mu);
        // 3. Complete with the updated factors.
        let completed = reconstruct_slice(&self.factors, &w);
        self.steps += 1;
        StepOutput {
            completed,
            outliers: None,
        }
    }
}

impl SnapshotModel for OnlineSgd {
    fn snapshot_kind(&self) -> &'static str {
        Self::KIND
    }

    fn snapshot(&self) -> String {
        let mut out = String::from("online-sgd v1\n");
        push_f64s(&mut out, "hyper", [self.mu]);
        out.push_str(&format!("steps {}\n", self.steps));
        push_factors(&mut out, &self.factors);
        out
    }
}

impl RestoreModel for OnlineSgd {
    const KIND: &'static str = "online-sgd";

    fn restore(payload: &str) -> Result<Self, CheckpointError> {
        let mut lines = payload.lines();
        let mut next = |what: &str| -> Result<&str, CheckpointError> {
            lines
                .next()
                .ok_or_else(|| CheckpointError::Malformed(format!("unexpected EOF at {what}")))
        };
        if next("header")?.trim_end() != "online-sgd v1" {
            return Err(CheckpointError::BadHeader);
        }
        let hyper = parse_f64s(next("hyper")?, "hyper")?;
        let &[mu] = hyper.as_slice() else {
            return Err(CheckpointError::Malformed("hyper arity".into()));
        };
        let steps = parse_usizes(next("steps")?, "steps")?;
        let &[steps] = steps.as_slice() else {
            return Err(CheckpointError::Malformed("steps".into()));
        };
        let factors = parse_factors(&mut lines)?;
        if factors.is_empty() || mu.is_nan() || mu <= 0.0 {
            return Err(CheckpointError::Malformed(
                "need non-empty factors and a positive step size".into(),
            ));
        }
        Ok(Self { factors, mu, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sofia_tensor::random::random_factors;
    use sofia_tensor::Mask;

    #[test]
    fn snapshot_roundtrip_is_bit_exact() {
        let mut rng = SmallRng::seed_from_u64(21);
        let truth = random_factors(&[4, 5], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..10)
            .map(|t| ObservedTensor::fully_observed(stream(&truth, t).1))
            .collect();
        let mut model = OnlineSgd::init(&startup, 2, 0.1, 3);
        for t in 10..16 {
            model.step(&ObservedTensor::fully_observed(stream(&truth, t).1));
        }
        assert_eq!(model.snapshot_kind(), OnlineSgd::KIND);
        let mut restored = OnlineSgd::restore(&model.snapshot()).expect("restore");
        for t in 16..24 {
            let slice = ObservedTensor::fully_observed(stream(&truth, t).1);
            let a = model.step(&slice);
            let b = restored.step(&slice);
            assert_eq!(a.completed.data(), b.completed.data(), "step {t}");
        }
        assert_eq!(model.steps, restored.steps);
    }

    #[test]
    fn restore_rejects_malformed() {
        assert!(matches!(
            OnlineSgd::restore("garbage"),
            Err(CheckpointError::BadHeader)
        ));
        let good = OnlineSgd::new(vec![Matrix::identity(2), Matrix::identity(2)], 0.1).snapshot();
        let truncated: String = good.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(OnlineSgd::restore(&truncated).is_err());
        assert!(OnlineSgd::restore(&good.replace("data ", "data zz ")).is_err());
    }

    fn stream(truth: &[Matrix], t: usize) -> (Vec<f64>, sofia_tensor::DenseTensor) {
        let w = vec![
            2.0 + (t as f64 * 0.35).sin(),
            -1.0 + 0.5 * (t as f64 * 0.2).cos(),
        ];
        let slice = reconstruct_slice(truth, &w);
        (w, slice)
    }

    #[test]
    fn tracks_clean_stream() {
        let mut rng = SmallRng::seed_from_u64(1);
        let truth = random_factors(&[5, 6], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..12)
            .map(|t| ObservedTensor::fully_observed(stream(&truth, t).1))
            .collect();
        let mut model = OnlineSgd::init(&startup, 2, 0.1, 3);
        let mut total = 0.0;
        for t in 12..36 {
            let (_, slice) = stream(&truth, t);
            let out = model.step(&ObservedTensor::fully_observed(slice.clone()));
            total += (&out.completed - &slice).frobenius_norm() / slice.frobenius_norm();
        }
        let avg = total / 24.0;
        assert!(avg < 0.05, "clean-stream avg NRE {avg}");
    }

    #[test]
    fn imputes_under_moderate_missingness() {
        let mut rng = SmallRng::seed_from_u64(2);
        let truth = random_factors(&[6, 6], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..12)
            .map(|t| ObservedTensor::fully_observed(stream(&truth, t).1))
            .collect();
        let mut model = OnlineSgd::init(&startup, 2, 0.1, 5);
        let mut total = 0.0;
        for t in 12..30 {
            let (_, slice) = stream(&truth, t);
            let mask = Mask::random(slice.shape().clone(), 0.2, &mut rng);
            let out = model.step(&ObservedTensor::new(slice.clone(), mask));
            total += (&out.completed - &slice).frobenius_norm() / slice.frobenius_norm();
        }
        let avg = total / 18.0;
        assert!(avg < 0.15, "missing-data avg NRE {avg}");
    }

    #[test]
    fn degrades_under_outliers_relative_to_clean() {
        // The Table I claim: OnlineSGD is NOT robust to outliers.
        let mut rng = SmallRng::seed_from_u64(3);
        let truth = random_factors(&[5, 5], 2, &mut rng);
        let startup: Vec<ObservedTensor> = (0..12)
            .map(|t| ObservedTensor::fully_observed(stream(&truth, t).1))
            .collect();

        let run = |corrupt: bool, seed: u64| -> f64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut model = OnlineSgd::init(&startup, 2, 0.1, 7);
            let mut total = 0.0;
            for t in 12..40 {
                let (_, clean) = stream(&truth, t);
                let mut vals = clean.clone();
                if corrupt {
                    for off in 0..vals.len() {
                        if rng.gen::<f64>() < 0.15 {
                            vals.set_flat(off, 25.0);
                        }
                    }
                }
                let out = model.step(&ObservedTensor::fully_observed(vals));
                total += (&out.completed - &clean).frobenius_norm() / clean.frobenius_norm();
            }
            total / 28.0
        };
        let clean_err = run(false, 11);
        let dirty_err = run(true, 11);
        assert!(
            dirty_err > clean_err * 5.0,
            "outliers should hurt OnlineSGD: clean {clean_err}, dirty {dirty_err}"
        );
    }

    #[test]
    fn name_and_no_outlier_output() {
        let factors = vec![Matrix::identity(2), Matrix::identity(2)];
        let mut model = OnlineSgd::new(factors, 0.1);
        assert_eq!(model.name(), "OnlineSGD");
        let slice = ObservedTensor::fully_observed(sofia_tensor::DenseTensor::zeros(
            sofia_tensor::Shape::new(&[2, 2]),
        ));
        let out = model.step(&slice);
        assert!(out.outliers.is_none());
    }
}
