//! `sofia-cli` — stream SOFIA over CSV tensor streams from the shell.
//!
//! ```text
//! sofia-cli generate --dir data/ --dataset chicago [--scale 0.25]
//!                    [--steps 600] [--setting 50,20,4] [--seed 7]
//! sofia-cli run      --dir data/ --rank 10 [--forecast 24]
//!                    [--checkpoint model.ckpt] [--seed 7]
//! sofia-cli resume   --checkpoint model.ckpt --dir more/ [--forecast 24]
//!                    [--save-checkpoint model2.ckpt]
//! ```
//!
//! The stream directory format is documented in [`format`].

mod commands;
mod format;

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage:\n  sofia-cli generate --dir DIR --dataset intel|traffic|chicago|nyc \
     [--scale F] [--steps N] [--setting X,Y,Z] [--seed N]\n  \
     sofia-cli run --dir DIR --rank R [--forecast H] [--checkpoint FILE] [--seed N]\n  \
     sofia-cli resume --checkpoint FILE --dir DIR [--forecast H] [--save-checkpoint FILE]"
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{flag}`"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let get = |k: &str| flags.get(k).cloned();
    let parse_setting = |s: &str| -> Result<(u32, u32, f64), String> {
        let parts: Vec<&str> = s.split(',').collect();
        if parts.len() != 3 {
            return Err(format!("bad --setting `{s}`, expected X,Y,Z"));
        }
        Ok((
            parts[0].parse().map_err(|_| "bad X".to_string())?,
            parts[1].parse().map_err(|_| "bad Y".to_string())?,
            parts[2].parse().map_err(|_| "bad Z".to_string())?,
        ))
    };

    let result = match cmd.as_str() {
        "generate" => {
            let dir = get("dir").map(PathBuf::from);
            let dataset = get("dataset");
            match (dir, dataset) {
                (Some(dir), Some(dataset)) => {
                    let scale = get("scale").and_then(|v| v.parse().ok()).unwrap_or(0.2);
                    let steps = get("steps").and_then(|v| v.parse().ok()).unwrap_or(400);
                    let seed = get("seed").and_then(|v| v.parse().ok()).unwrap_or(2021);
                    let setting = match get("setting") {
                        Some(s) => match parse_setting(&s) {
                            Ok(v) => v,
                            Err(e) => {
                                eprintln!("error: {e}");
                                return ExitCode::from(2);
                            }
                        },
                        None => (30, 15, 3.0),
                    };
                    commands::generate(&dir, &dataset, scale, steps, setting, seed)
                }
                _ => {
                    eprintln!("generate needs --dir and --dataset\n{}", usage());
                    return ExitCode::from(2);
                }
            }
        }
        "run" => {
            let dir = get("dir").map(PathBuf::from);
            let rank = get("rank").and_then(|v| v.parse().ok());
            match (dir, rank) {
                (Some(dir), Some(rank)) => {
                    let horizon = get("forecast").and_then(|v| v.parse().ok()).unwrap_or(0);
                    let seed = get("seed").and_then(|v| v.parse().ok()).unwrap_or(2021);
                    let ckpt = get("checkpoint").map(PathBuf::from);
                    commands::run(&dir, rank, horizon, ckpt.as_deref(), seed)
                }
                _ => {
                    eprintln!("run needs --dir and --rank\n{}", usage());
                    return ExitCode::from(2);
                }
            }
        }
        "resume" => {
            let ckpt = get("checkpoint").map(PathBuf::from);
            let dir = get("dir").map(PathBuf::from);
            match (ckpt, dir) {
                (Some(ckpt), Some(dir)) => {
                    let horizon = get("forecast").and_then(|v| v.parse().ok()).unwrap_or(0);
                    let out = get("save-checkpoint").map(PathBuf::from);
                    commands::resume(&ckpt, &dir, horizon, out.as_deref())
                }
                _ => {
                    eprintln!("resume needs --checkpoint and --dir\n{}", usage());
                    return ExitCode::from(2);
                }
            }
        }
        other => {
            eprintln!("unknown command `{other}`\n{}", usage());
            return ExitCode::from(2);
        }
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
