//! Mergeable observability summaries for the SOFIA serving stack.
//!
//! A fleet that serves streams across shard threads, processes, and
//! cluster nodes cannot answer "what is my p99.9 ingest latency?" or
//! "which streams are drifting?" from per-shard EWMAs — averages of
//! averages are biased and tails are invisible. This crate provides the
//! two summaries the stack records instead, both **mergeable** (combine
//! per-stream → per-shard → per-node → cluster-wide without bias) and
//! both with a **bit-exact hex-float wire form** built on
//! [`sofia_core::snapshot::wire`] so they survive the socket unchanged:
//!
//! * [`StatsSummary`] — exact moment partials (`n`, `min`, `max`, `sum`,
//!   `sum of squares`). Merging adds the partials, so a rollup over any
//!   grouping is exactly the summary of the union; mean/variance fall
//!   out of the partials.
//! * [`TDigest`] — a deterministic merging t-digest (Dunning's k₁ scale)
//!   for quantiles, most accurate at the distribution's edges where
//!   p99/p99.9 live.
//! * [`MetricSummary`] — the pair the fleet actually carries per metric:
//!   one digest plus one moment summary fed by the same observations.
//!
//! ## Determinism and merge algebra
//!
//! `merge` on every type is **commutative bit-exactly**: `merge(a, b)`
//! and `merge(b, a)` produce identical bits (IEEE 754 addition is
//! commutative, min/max use the total order, and the digest canonicalizes
//! by sorting centroids). Folds of three or more summaries are
//! deterministic for a *fixed fold order* — float addition is not
//! associative, so callers that need bit-reproducible rollups (the fleet
//! and cluster stats paths do) must fold in a stable order: the fleet
//! folds shards in shard-index order, the cluster folds endpoints in
//! route-slot order.
//!
//! Non-finite observations (NaN, ±∞) are **ignored** by `observe` on
//! every type — a poisoned latency probe must not destroy a summary.
//! Wire *parsers* are nevertheless total over hostile bit patterns:
//! moment lines round-trip any f64 bits (legitimately including ±∞
//! sentinels and overflowed sums), and digest lines reject structurally
//! invalid payloads (non-finite means/weights, descending means) with a
//! typed error instead of panicking.

pub mod metric;
pub mod moments;
pub mod tdigest;

pub use metric::{MetricSummary, METRIC_WIRE_LINES};
pub use moments::StatsSummary;
pub use tdigest::TDigest;

use sofia_core::checkpoint::CheckpointError;
use sofia_core::snapshot::wire;

/// Largest centroid count a wire parser accepts before allocating
/// (second line of defence behind the transport's frame-size bound).
pub const MAX_WIRE_CENTROIDS: usize = 1 << 20;

/// Minimum of two floats under the IEEE 754 total order (deterministic
/// for `-0.0` vs `0.0` and total over NaNs, unlike `f64::min`).
pub(crate) fn total_min(a: f64, b: f64) -> f64 {
    if b.total_cmp(&a) == std::cmp::Ordering::Less {
        b
    } else {
        a
    }
}

/// Maximum of two floats under the IEEE 754 total order.
pub(crate) fn total_max(a: f64, b: f64) -> f64 {
    if b.total_cmp(&a) == std::cmp::Ordering::Greater {
        b
    } else {
        a
    }
}

/// Parses a `label v1 v2 …` hex-float line and checks the value count.
pub(crate) fn parse_f64s_exact(
    line: &str,
    label: &str,
    expect: usize,
) -> Result<Vec<f64>, CheckpointError> {
    let values = wire::parse_f64s(line, label)?;
    if values.len() != expect {
        return Err(CheckpointError::Malformed(format!(
            "`{label}` carries {} floats, expected {expect}",
            values.len()
        )));
    }
    Ok(values)
}

/// Parses a `label <n>` line holding exactly one decimal integer.
pub(crate) fn parse_usize_field(line: &str, label: &str) -> Result<usize, CheckpointError> {
    let values = wire::parse_usizes(line, label)?;
    if values.len() != 1 {
        return Err(CheckpointError::Malformed(format!(
            "`{label}` carries {} integers, expected 1",
            values.len()
        )));
    }
    Ok(values[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_min_max_are_deterministic_on_signed_zero() {
        assert_eq!(total_min(0.0, -0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(total_min(-0.0, 0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(total_max(0.0, -0.0).to_bits(), (0.0f64).to_bits());
        assert_eq!(total_max(-0.0, 0.0).to_bits(), (0.0f64).to_bits());
    }

    #[test]
    fn exact_line_parsers_reject_wrong_counts() {
        assert!(parse_f64s_exact("v 3ff0000000000000", "v", 2).is_err());
        assert!(parse_usize_field("n 1 2", "n").is_err());
        assert!(parse_usize_field("n", "n").is_err());
        assert_eq!(parse_usize_field("n 7", "n").unwrap(), 7);
    }
}
