//! Dynamic (streaming) updates of SOFIA — Algorithm 3.
//!
//! At each time step `t` the state receives a partially observed subtensor
//! `Y_t` and performs, touching only observed entries:
//!
//! 1. one-step Holt-Winters forecast of the temporal vector (Eq. (19)) and
//!    of the subtensor (Eq. (20));
//! 2. outlier estimation by tensor-extended Huber pre-cleaning (Eq. (21));
//! 3. error-scale tensor update by the element-wise biweight recursion
//!    (Eq. (22)) — *after* outlier rejection, the paper's key deviation
//!    from Gelper et al.;
//! 4. gradient-descent updates of the non-temporal factors (Eq. (24)) and
//!    of the temporal vector (Eq. (25));
//! 5. vector Holt-Winters smoothing updates (Eq. (26));
//! 6. reconstruction `X̂_t` (Eq. (27)) for imputation.
//!
//! Total per-step cost is `O(|Ω_t|·N·R)` plus the `O(Π Iₙ · R)`
//! reconstruction requested for imputation output (Lemma 2 counts only the
//! model update, which is what `update_only` exposes for the scalability
//! experiments).

use crate::config::SofiaConfig;
use crate::hw::HwBank;
use sofia_tensor::{kruskal, DenseTensor, Matrix, ObservedTensor, Shape};
use sofia_timeseries::robust::{biweight_rho, huber_psi, DEFAULT_CK, DEFAULT_K};
use std::collections::VecDeque;

/// Output of one dynamic step.
#[derive(Debug, Clone)]
pub struct DynStepOutput {
    /// Completed reconstruction `X̂_t` (Eq. (27)).
    pub completed: DenseTensor,
    /// Estimated outlier subtensor `O_t` (zero at unobserved entries).
    pub outliers: DenseTensor,
    /// The updated temporal vector `u⁽ᴺ⁾_t`.
    pub temporal: Vec<f64>,
}

/// The evolving state of SOFIA's dynamic phase.
#[derive(Debug, Clone)]
pub struct DynamicState {
    config: SofiaConfig,
    /// Non-temporal factor matrices `{U⁽ⁿ⁾_t}`.
    factors: Vec<Matrix>,
    /// Ring of the last `m` temporal vectors, front = `u_{t−m}`.
    history: VecDeque<Vec<f64>>,
    /// Per-component Holt-Winters models.
    hw: HwBank,
    /// Error-scale tensor `Σ̂_t` over the slice shape (Eq. (22)).
    sigma: DenseTensor,
    /// Slice shape (non-temporal dims).
    slice_shape: Shape,
    /// Number of dynamic steps processed so far.
    steps: usize,
}

impl DynamicState {
    /// Builds the dynamic state from initialization outputs: non-temporal
    /// factors, the last `m` temporal vectors, and the fitted HW bank.
    /// The error-scale tensor starts at `λ₃/100` everywhere (Algorithm 3,
    /// line 1).
    pub fn new(
        config: SofiaConfig,
        mut factors: Vec<Matrix>,
        mut recent_temporal: Vec<Vec<f64>>,
        mut hw: HwBank,
    ) -> Self {
        assert!(!factors.is_empty(), "need at least one non-temporal factor");
        assert_eq!(
            recent_temporal.len(),
            config.period,
            "need exactly m recent temporal vectors"
        );
        for u in &recent_temporal {
            assert_eq!(u.len(), config.rank, "temporal vector rank mismatch");
        }
        assert_eq!(hw.rank(), config.rank, "HW bank rank mismatch");
        assert_eq!(hw.period(), config.period, "HW bank period mismatch");

        // Establish the unit-norm convention of Eq. (11) at construction:
        // push each component's non-temporal column norms into the temporal
        // history and the (linear) Holt-Winters state. The reconstruction
        // ⟦{U⁽ⁿ⁾}; u⟧ is unchanged; the streaming updates then maintain the
        // convention per step.
        for k in 0..config.rank {
            let mut scale = 1.0;
            for f in factors.iter_mut() {
                let norm = f.col_norm(k);
                if norm > 0.0 {
                    f.scale_col(k, 1.0 / norm);
                    scale *= norm;
                }
            }
            if (scale - 1.0).abs() > 1e-15 {
                for u in &mut recent_temporal {
                    u[k] *= scale;
                }
                hw.scale_component(k, scale);
            }
        }

        let dims: Vec<usize> = factors.iter().map(|f| f.rows()).collect();
        let slice_shape = Shape::new(&dims);
        let sigma = DenseTensor::full(slice_shape.clone(), config.lambda3 / 100.0);
        Self {
            config,
            factors,
            history: recent_temporal.into(),
            hw,
            sigma,
            slice_shape,
            steps: 0,
        }
    }

    /// Restores a state verbatim from checkpointed parts — unlike
    /// [`DynamicState::new`], **no renormalization** is applied, so a
    /// restored model is bit-identical to the one that was saved (the
    /// saved state already satisfies the unit-norm convention up to the
    /// float dust the per-step renormalization leaves behind).
    pub fn restore(
        config: SofiaConfig,
        factors: Vec<Matrix>,
        recent_temporal: Vec<Vec<f64>>,
        hw: HwBank,
        sigma: DenseTensor,
        steps: usize,
    ) -> Self {
        assert!(!factors.is_empty(), "need at least one non-temporal factor");
        assert_eq!(
            recent_temporal.len(),
            config.period,
            "need exactly m recent temporal vectors"
        );
        for u in &recent_temporal {
            assert_eq!(u.len(), config.rank, "temporal vector rank mismatch");
        }
        assert_eq!(hw.rank(), config.rank, "HW bank rank mismatch");
        assert_eq!(hw.period(), config.period, "HW bank period mismatch");
        let dims: Vec<usize> = factors.iter().map(|f| f.rows()).collect();
        let slice_shape = Shape::new(&dims);
        assert_eq!(sigma.shape(), &slice_shape, "sigma shape mismatch");
        Self {
            config,
            factors,
            history: recent_temporal.into(),
            hw,
            sigma,
            slice_shape,
            steps,
        }
    }

    /// The non-temporal factor matrices.
    pub fn factors(&self) -> &[Matrix] {
        &self.factors
    }

    /// The Holt-Winters bank.
    pub fn hw(&self) -> &HwBank {
        &self.hw
    }

    /// The error-scale tensor `Σ̂_t`.
    pub fn sigma(&self) -> &DenseTensor {
        &self.sigma
    }

    /// Shape of the streaming slices.
    pub fn slice_shape(&self) -> &Shape {
        &self.slice_shape
    }

    /// Number of dynamic steps processed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Most recent temporal vector `u⁽ᴺ⁾_{t}` (after at least one step, or
    /// the last initialization vector before any).
    pub fn last_temporal(&self) -> &[f64] {
        self.history.back().expect("history is never empty")
    }

    /// The sliding window of the last `m` temporal vectors, oldest first
    /// (`u_{t−m}, …, u_{t−1}`) — exposed for checkpointing.
    pub fn temporal_history(&self) -> Vec<Vec<f64>> {
        self.history.iter().cloned().collect()
    }

    /// Restores the error-scale tensor (checkpoint loading).
    ///
    /// # Panics
    /// Panics if the shape differs from the slice shape.
    pub fn set_sigma(&mut self, sigma: DenseTensor) {
        assert_eq!(
            sigma.shape(),
            &self.slice_shape,
            "sigma shape must match the slice shape"
        );
        self.sigma = sigma;
    }

    /// Restores the step counter (checkpoint loading).
    pub fn set_steps(&mut self, steps: usize) {
        self.steps = steps;
    }

    /// Processes one streaming subtensor (Algorithm 3 body) and returns the
    /// completed reconstruction plus diagnostics.
    pub fn step(&mut self, slice: &ObservedTensor) -> DynStepOutput {
        let (u_t, outliers) = self.update_only(slice);
        // Step 5 (Eq. 27): dense reconstruction for imputation.
        let refs: Vec<&Matrix> = self.factors.iter().collect();
        let completed = kruskal::kruskal_slice(&refs, &u_t);
        DynStepOutput {
            completed,
            outliers,
            temporal: u_t,
        }
    }

    /// The model-update portion of Algorithm 3 **without** materializing
    /// the dense reconstruction — exactly the `O(|Ω_t|·N·R)` work counted
    /// by Lemma 2. Returns the new temporal vector and the outlier
    /// subtensor.
    pub fn update_only(&mut self, slice: &ObservedTensor) -> (Vec<f64>, DenseTensor) {
        assert_eq!(
            slice.shape(),
            &self.slice_shape,
            "slice shape changed mid-stream"
        );
        let rank = self.config.rank;
        let n_modes = self.factors.len();
        let shape = self.slice_shape.clone();
        let lambda1 = self.config.lambda1;
        let lambda2 = self.config.lambda2;
        let mu = self.config.mu;
        let phi = self.config.phi;

        // Step 1 (Eqs. 19-20): forecast temporal vector; subtensor forecast
        // is evaluated lazily per observed entry below.
        let u_hat = self.hw.forecast_one();

        // Steps 2-4 fused over observed entries.
        let mut outliers = DenseTensor::zeros(shape.clone());
        // Gradient accumulators: ΔU⁽ⁿ⁾ per non-temporal mode and Δu for the
        // temporal vector, plus diagonal curvature accumulators used to damp
        // the steps (see the stability note below).
        let mut grads: Vec<Matrix> = self
            .factors
            .iter()
            .map(|f| Matrix::zeros(f.rows(), rank))
            .collect();
        let mut curvs: Vec<Matrix> = self
            .factors
            .iter()
            .map(|f| Matrix::zeros(f.rows(), rank))
            .collect();
        let mut u_grad = vec![0.0f64; rank];
        let mut u_curv = vec![0.0f64; rank];

        let mut idx = vec![0usize; shape.order()];
        let mut rows: Vec<&[f64]> = Vec::with_capacity(n_modes);
        let mut prod = vec![0.0f64; rank];
        for &off in slice.mask().observed_offsets() {
            shape.unravel_into(off, &mut idx);
            rows.clear();
            for (l, f) in self.factors.iter().enumerate() {
                rows.push(f.row(idx[l]));
            }
            // prod[k] = Π_l U⁽ˡ⁾[i_l, k]  (all non-temporal modes)
            for k in 0..rank {
                let mut p = 1.0;
                for row in &rows {
                    p *= row[k];
                }
                prod[k] = p;
            }
            // ŷ = Σ_k prod[k]·û_k  (Eq. 20 at this entry)
            let mut y_hat = 0.0;
            for k in 0..rank {
                y_hat += prod[k] * u_hat[k];
            }
            let y = slice.values().get_flat(off);
            let err = y - y_hat;

            // Step 2 (Eq. 21): Huber pre-cleaning → outlier estimate.
            // Inside the Huber band Ψ(e/σ)·σ = e exactly, so o = 0; compute
            // the branch directly to avoid floating-point dust.
            let sig = self.sigma.get_flat(off);
            let o = if err.abs() < DEFAULT_K * sig {
                0.0
            } else {
                err - huber_psi(err / sig, DEFAULT_K) * sig
            };
            if o != 0.0 {
                outliers.set_flat(off, o);
            }

            // Step 3 (Eq. 22): per-entry biweight scale update (after the
            // outlier was rejected).
            let rho = biweight_rho(err / sig, DEFAULT_K, DEFAULT_CK);
            let new_var = phi * rho * sig * sig + (1.0 - phi) * sig * sig;
            self.sigma
                .set_flat(off, new_var.sqrt().max(f64::MIN_POSITIVE));

            // Residual for the gradient: r = y − o − ŷ (the cleaned error).
            let r = err - o;

            // Step 4a (Eq. 24): ΔU⁽ⁿ⁾[iₙ,k] += r · û_k · Π_{l≠n} rows.
            // Step 4b (Eq. 25): Δu[k]      += r · Π_l rows = r · prod[k].
            for k in 0..rank {
                u_grad[k] += r * prod[k];
                u_curv[k] += prod[k] * prod[k];
            }
            for n in 0..n_modes {
                let g = grads[n].row_mut(idx[n]);
                let h = curvs[n].row_mut(idx[n]);
                let row_n = rows[n];
                for k in 0..rank {
                    let lo = if row_n[k] != 0.0 {
                        // Π_{l≠n} = prod / row_n (guarded against 0).
                        prod[k] / row_n[k]
                    } else {
                        // Recompute the leave-one-out product explicitly.
                        let mut p = 1.0;
                        for (l, row) in rows.iter().enumerate() {
                            if l != n {
                                p *= row[k];
                            }
                        }
                        p
                    };
                    let coeff = u_hat[k] * lo;
                    g[k] += r * coeff;
                    h[k] += coeff * coeff;
                }
            }
        }

        // Apply the factor gradient steps (Eq. 24): U_t = U_{t−1} + 2µ·ΔU.
        //
        // Stability note: the raw step of Eq. (24) has per-coordinate
        // feedback gain 1 − 2µ·h where h = Σ_obs (û_k · Π_{l≠n} u_l)² is
        // the diagonal of the least-squares Hessian. When the temporal
        // factor carries the data scale (û ≫ 1, the usual case after the
        // unit-norm constraint pushes all magnitude into mode N), h ≫ 1 and
        // the raw recursion diverges. We therefore damp each coordinate by
        // max(1, h): in the well-scaled regime (h ≤ 1) this is *exactly*
        // Eq. (24); otherwise it is a µ-fraction diagonal Gauss-Newton step
        // with the same O(|Ω_t|·N·R) cost. See DESIGN.md (substitutions).
        for n in 0..n_modes {
            let f = &mut self.factors[n];
            for i in 0..f.rows() {
                let g = grads[n].row(i);
                let h = curvs[n].row(i);
                let frow = f.row_mut(i);
                for k in 0..rank {
                    frow[k] += 2.0 * mu * g[k] / h[k].max(1.0);
                }
            }
        }

        // Temporal vector update (Eq. 25), using u_{t−1} and u_{t−m}, with
        // the same max(1, h) damping (h = Σ_obs prod² + λ₁ + λ₂ is the
        // exact diagonal curvature of f_t in u).
        let u_prev = self.history.back().expect("history non-empty").clone();
        let u_season = self.history.front().expect("history non-empty").clone();
        let mut u_t = vec![0.0f64; rank];
        for k in 0..rank {
            let grad = u_grad[k] + lambda1 * u_prev[k] + lambda2 * u_season[k]
                - (lambda1 + lambda2) * u_hat[k];
            let curv = (u_curv[k] + lambda1 + lambda2).max(1.0);
            u_t[k] = u_hat[k] + 2.0 * mu * grad / curv;
        }

        // Re-impose the unit-norm constraint of Eq. (11) (`‖ũ⁽ⁿ⁾ᵣ‖₂ = 1`
        // for non-temporal modes): the gradient steps de-normalize the
        // factors slightly each step, and without this the scale
        // indeterminacy (A → cA, u → u/c) lets factor norms drift over
        // long streams, silently re-scaling the temporal series under the
        // Holt-Winters models until forecasts diverge. Pushing the norms
        // into u_t leaves X̂_t unchanged.
        for k in 0..rank {
            let mut scale = 1.0;
            for f in self.factors.iter_mut() {
                let norm = f.col_norm(k);
                if norm > 0.0 {
                    f.scale_col(k, 1.0 / norm);
                    scale *= norm;
                }
            }
            u_t[k] *= scale;
        }

        // Step 5 of Algorithm 3 (Eq. 26): HW smoothing with the realized u_t.
        self.hw.update(&u_t);

        // Slide the temporal history window.
        self.history.pop_front();
        self.history.push_back(u_t.clone());
        self.steps += 1;

        (u_t, outliers)
    }

    /// Forecasts the subtensor `h` steps ahead of the last processed one
    /// (Eq. (28)): HW-forecast the temporal vector, then reconstruct with
    /// the most recent non-temporal factors.
    pub fn forecast_slice(&self, h: usize) -> DenseTensor {
        let u = self.hw.forecast(h);
        let refs: Vec<&Matrix> = self.factors.iter().collect();
        kruskal::kruskal_slice(&refs, &u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_tensor::Mask;
    use sofia_timeseries::holt_winters::{HoltWinters, HwParams, HwState};

    /// Rank-1 toy: X_t[i,j] = a_i·b_j·s(t) with period-4 seasonal s.
    struct Toy {
        a: Vec<f64>,
        b: Vec<f64>,
        pattern: Vec<f64>,
    }

    impl Toy {
        fn new() -> Self {
            Self {
                a: vec![1.0, 2.0, 3.0],
                b: vec![0.5, 1.5],
                pattern: vec![4.0, 6.0, 5.0, 3.0],
            }
        }

        fn s(&self, t: usize) -> f64 {
            self.pattern[t % 4]
        }

        fn slice(&self, t: usize) -> DenseTensor {
            DenseTensor::from_fn(Shape::new(&[3, 2]), |idx| {
                self.a[idx[0]] * self.b[idx[1]] * self.s(t)
            })
        }

        /// A DynamicState seeded with the exact ground-truth model.
        fn exact_state(&self, config: SofiaConfig) -> DynamicState {
            let factors = vec![
                Matrix::from_fn(3, 1, |i, _| self.a[i]),
                Matrix::from_fn(2, 1, |i, _| self.b[i]),
            ];
            // Temporal history = pattern values for t = -4..0 (phases 0..4).
            let history: Vec<Vec<f64>> = (0..4).map(|t| vec![self.s(t)]).collect();
            // HW model matching the pure-seasonal series exactly: level =
            // mean, zero trend, seasonal = deviations, next phase 0.
            let mean = self.pattern.iter().sum::<f64>() / 4.0;
            let seasonal: Vec<f64> = self.pattern.iter().map(|v| v - mean).collect();
            let hw = HwBank::from_models(vec![HoltWinters::new(
                HwParams::new(0.2, 0.05, 0.1),
                HwState::new(mean, 0.0, seasonal, 0),
            )]);
            DynamicState::new(config, factors, history, hw)
        }
    }

    fn toy_config() -> SofiaConfig {
        SofiaConfig::new(1, 4).with_lambdas(1e-3, 1e-3, 10.0)
    }

    #[test]
    fn exact_model_tracks_clean_stream_with_zero_error() {
        let toy = Toy::new();
        let mut st = toy.exact_state(toy_config());
        for t in 4..20 {
            let truth = toy.slice(t);
            let out = st.step(&ObservedTensor::fully_observed(truth.clone()));
            let rel = (&out.completed - &truth).frobenius_norm() / truth.frobenius_norm();
            assert!(rel < 5e-4, "t={t} rel={rel}");
            assert_eq!(out.outliers.max_abs(), 0.0, "no outliers expected");
        }
    }

    #[test]
    fn outlier_entry_is_flagged_and_rejected() {
        let toy = Toy::new();
        let mut st = toy.exact_state(toy_config());
        // Warm up to tighten sigma.
        for t in 4..12 {
            st.step(&ObservedTensor::fully_observed(toy.slice(t)));
        }
        // Inject a massive spike at (0,0).
        let mut corrupted = toy.slice(12);
        let clean_value = corrupted.get(&[0, 0]);
        corrupted.set(&[0, 0], 1000.0);
        let out = st.step(&ObservedTensor::fully_observed(corrupted));
        // The spike is attributed almost entirely to O_t …
        assert!(out.outliers.get(&[0, 0]) > 900.0);
        // … and the completed value stays near the clean one.
        assert!(
            (out.completed.get(&[0, 0]) - clean_value).abs() < 1.0,
            "completed {} vs clean {}",
            out.completed.get(&[0, 0]),
            clean_value
        );
    }

    #[test]
    fn missing_entries_are_imputed() {
        let toy = Toy::new();
        let mut st = toy.exact_state(toy_config());
        for t in 4..10 {
            st.step(&ObservedTensor::fully_observed(toy.slice(t)));
        }
        // Observe only half the entries.
        let truth = toy.slice(10);
        let mask = Mask::from_vec(
            truth.shape().clone(),
            vec![true, false, false, true, true, false],
        );
        let out = st.step(&ObservedTensor::new(truth.clone(), mask));
        let rel = (&out.completed - &truth).frobenius_norm() / truth.frobenius_norm();
        assert!(rel < 1e-3, "imputation rel {rel}");
    }

    #[test]
    fn forecast_slice_matches_future_truth_for_exact_model() {
        let toy = Toy::new();
        let mut st = toy.exact_state(toy_config());
        for t in 4..16 {
            st.step(&ObservedTensor::fully_observed(toy.slice(t)));
        }
        for h in 1..=4 {
            let fc = st.forecast_slice(h);
            let truth = toy.slice(16 + h - 1);
            let rel = (&fc - &truth).frobenius_norm() / truth.frobenius_norm();
            assert!(rel < 1e-3, "h={h} rel={rel}");
        }
    }

    #[test]
    fn sigma_initialized_at_lambda3_over_100() {
        let toy = Toy::new();
        let st = toy.exact_state(toy_config());
        assert!((st.sigma().get(&[0, 0]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn update_only_and_step_agree() {
        let toy = Toy::new();
        let mut s1 = toy.exact_state(toy_config());
        let mut s2 = toy.exact_state(toy_config());
        let slice = ObservedTensor::fully_observed(toy.slice(4));
        let out = s1.step(&slice);
        let (u, o) = s2.update_only(&slice);
        assert_eq!(out.temporal, u);
        assert_eq!(out.outliers.data(), o.data());
    }

    #[test]
    fn steps_counter_advances() {
        let toy = Toy::new();
        let mut st = toy.exact_state(toy_config());
        assert_eq!(st.steps(), 0);
        st.step(&ObservedTensor::fully_observed(toy.slice(4)));
        st.step(&ObservedTensor::fully_observed(toy.slice(5)));
        assert_eq!(st.steps(), 2);
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn wrong_slice_shape_panics() {
        let toy = Toy::new();
        let mut st = toy.exact_state(toy_config());
        let wrong = ObservedTensor::fully_observed(DenseTensor::zeros(Shape::new(&[2, 2])));
        st.step(&wrong);
    }
}
