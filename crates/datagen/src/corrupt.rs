//! The `(X, Y, Z)` corruption protocol of §VI-A.
//!
//! "A Y% of randomly selected entries are corrupted by outliers and X% of
//! randomly selected entries are ignored and treated as missings. The
//! magnitude of each outlier is `−Z·max(X)` or `Z·max(X)` with equal
//! probability, where `max(X)` is the maximum entry value of the entire
//! ground truth tensor."

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sofia_tensor::{DenseTensor, Mask, ObservedTensor};

/// An `(X, Y, Z)` corruption setting: missing fraction, outlier fraction,
/// and outlier magnitude multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionConfig {
    /// Fraction of entries hidden (the paper's `X%`, as a fraction).
    pub missing: f64,
    /// Fraction of entries replaced by outliers (the paper's `Y%`).
    pub outlier: f64,
    /// Outlier magnitude multiplier `Z` (relative to `max(X)`).
    pub magnitude: f64,
}

impl CorruptionConfig {
    /// Builds a setting from the paper's percent notation, e.g.
    /// `CorruptionConfig::from_percents(70, 20, 5.0)` for `(70, 20, 5)`.
    pub fn from_percents(missing_pct: u32, outlier_pct: u32, magnitude: f64) -> Self {
        assert!(missing_pct <= 100 && outlier_pct <= 100);
        assert!(magnitude >= 0.0);
        Self {
            missing: missing_pct as f64 / 100.0,
            outlier: outlier_pct as f64 / 100.0,
            magnitude,
        }
    }

    /// The paper's four standard settings, mildest → harshest:
    /// (20,10,2), (30,15,3), (50,20,4), (70,20,5).
    pub fn paper_settings() -> [CorruptionConfig; 4] {
        [
            Self::from_percents(20, 10, 2.0),
            Self::from_percents(30, 15, 3.0),
            Self::from_percents(50, 20, 4.0),
            Self::from_percents(70, 20, 5.0),
        ]
    }

    /// Compact label like "(70,20,5)" used in figures.
    pub fn label(&self) -> String {
        format!(
            "({},{},{})",
            (self.missing * 100.0).round() as u32,
            (self.outlier * 100.0).round() as u32,
            self.magnitude
        )
    }
}

/// Applies a [`CorruptionConfig`] to clean slices, deterministically per
/// `(seed, t)`.
#[derive(Debug, Clone)]
pub struct Corruptor {
    config: CorruptionConfig,
    /// `max(X)` of the ground-truth stream, fixed up front per §VI-A.
    max_abs: f64,
    seed: u64,
}

impl Corruptor {
    /// Creates a corruptor; `max_abs` is the ground-truth tensor's maximum
    /// absolute entry (the paper's `max(X)`).
    pub fn new(config: CorruptionConfig, max_abs: f64, seed: u64) -> Self {
        assert!(max_abs.is_finite() && max_abs >= 0.0);
        Self {
            config,
            max_abs,
            seed,
        }
    }

    /// The corruption setting.
    pub fn config(&self) -> &CorruptionConfig {
        &self.config
    }

    /// Corrupts the clean slice for time `t`: injects outliers, then hides
    /// entries. Returns the observed (masked, corrupted) slice.
    pub fn corrupt(&self, clean: &DenseTensor, t: usize) -> ObservedTensor {
        self.corrupt_labeled(clean, t).0
    }

    /// [`Corruptor::corrupt`] plus ground-truth labels: the flat offsets of
    /// the injected outliers that remain *observed* after masking (hidden
    /// outliers are unknowable to any method, so they are excluded from
    /// detection scoring).
    pub fn corrupt_labeled(&self, clean: &DenseTensor, t: usize) -> (ObservedTensor, Vec<usize>) {
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ (t as u64).wrapping_mul(0xd129_0d3b_3f2d_a37b));
        let mut values = clean.clone();
        let mut injected = Vec::new();
        if self.config.outlier > 0.0 && self.config.magnitude > 0.0 {
            let mag = self.config.magnitude * self.max_abs;
            for off in 0..values.len() {
                if rng.gen::<f64>() < self.config.outlier {
                    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                    values.set_flat(off, sign * mag);
                    injected.push(off);
                }
            }
        }
        let mask = Mask::random(clean.shape().clone(), self.config.missing, &mut rng);
        let observed_outliers = injected
            .into_iter()
            .filter(|&off| mask.is_observed_flat(off))
            .collect();
        (ObservedTensor::new(values, mask), observed_outliers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_tensor::Shape;

    fn clean() -> DenseTensor {
        DenseTensor::from_fn(Shape::new(&[20, 20]), |idx| {
            ((idx[0] + idx[1]) % 5) as f64 - 2.0
        })
    }

    #[test]
    fn paper_settings_ordered_mild_to_harsh() {
        let settings = CorruptionConfig::paper_settings();
        for w in settings.windows(2) {
            assert!(w[0].missing <= w[1].missing);
            assert!(w[0].magnitude <= w[1].magnitude);
        }
        assert_eq!(settings[3].label(), "(70,20,5)");
    }

    #[test]
    fn outliers_have_exact_magnitude() {
        let cfg = CorruptionConfig::from_percents(0, 30, 4.0);
        let c = Corruptor::new(cfg, 2.0, 7);
        let slice = c.corrupt(&clean(), 0);
        let mut n_outliers = 0;
        for off in 0..slice.values().len() {
            let v = slice.values().get_flat(off);
            if v.abs() > 2.0 + 1e-12 {
                assert!((v.abs() - 8.0).abs() < 1e-12, "outlier magnitude {v}");
                n_outliers += 1;
            }
        }
        // ~30% of 400 entries.
        assert!((60..=180).contains(&n_outliers), "{n_outliers} outliers");
    }

    #[test]
    fn missing_fraction_close_to_requested() {
        let cfg = CorruptionConfig::from_percents(70, 0, 0.0);
        let c = Corruptor::new(cfg, 2.0, 3);
        let slice = c.corrupt(&clean(), 5);
        let frac = slice.mask().observed_fraction();
        assert!((frac - 0.3).abs() < 0.08, "observed fraction {frac}");
    }

    #[test]
    fn deterministic_per_t() {
        let cfg = CorruptionConfig::from_percents(50, 20, 5.0);
        let c = Corruptor::new(cfg, 2.0, 11);
        let a = c.corrupt(&clean(), 9);
        let b = c.corrupt(&clean(), 9);
        assert_eq!(a, b);
        let other = c.corrupt(&clean(), 10);
        assert_ne!(a, other);
    }

    #[test]
    fn zero_corruption_is_identity() {
        let cfg = CorruptionConfig::from_percents(0, 0, 0.0);
        let c = Corruptor::new(cfg, 2.0, 1);
        let x = clean();
        let slice = c.corrupt(&x, 0);
        assert_eq!(slice.values().data(), x.data());
        assert_eq!(slice.count_observed(), x.len());
    }

    #[test]
    fn labeled_corruption_matches_unlabeled() {
        let cfg = CorruptionConfig::from_percents(40, 20, 4.0);
        let c = Corruptor::new(cfg, 2.0, 9);
        let x = clean();
        let plain = c.corrupt(&x, 3);
        let (labeled, outliers) = c.corrupt_labeled(&x, 3);
        assert_eq!(plain, labeled);
        // Every labelled offset is observed and carries the outlier value.
        for &off in &outliers {
            assert!(labeled.mask().is_observed_flat(off));
            assert!((labeled.values().get_flat(off).abs() - 8.0).abs() < 1e-12);
        }
        // Count is plausible: ~20% injected, ~60% of those observed.
        let expected = (x.len() as f64 * 0.2 * 0.6) as usize;
        assert!(
            outliers.len() > expected / 2 && outliers.len() < expected * 2,
            "{} labelled outliers vs ~{expected} expected",
            outliers.len()
        );
    }

    #[test]
    fn labels_empty_without_outliers() {
        let cfg = CorruptionConfig::from_percents(50, 0, 0.0);
        let c = Corruptor::new(cfg, 2.0, 9);
        let (_, outliers) = c.corrupt_labeled(&clean(), 0);
        assert!(outliers.is_empty());
    }

    #[test]
    fn both_outlier_signs_occur() {
        let cfg = CorruptionConfig::from_percents(0, 50, 3.0);
        let c = Corruptor::new(cfg, 2.0, 5);
        let slice = c.corrupt(&clean(), 0);
        let pos = slice.values().data().iter().filter(|&&v| v > 5.0).count();
        let neg = slice.values().data().iter().filter(|&&v| v < -5.0).count();
        assert!(pos > 10 && neg > 10, "pos {pos} neg {neg}");
    }
}
