//! Universal model snapshots: capability traits plus the versioned **v2
//! checkpoint envelope** shared by every durable model.
//!
//! The v1 checkpoint format ([`crate::checkpoint`]) serializes exactly one
//! model kind — SOFIA. A serving layer that wants *any* model to survive a
//! crash needs two extra pieces, both provided here:
//!
//! * **Capability traits** — [`SnapshotModel`] (object-safe: a served
//!   `dyn` model can be asked for its kind tag and a bit-exact text
//!   payload) and [`RestoreModel`] (the inverse, dispatched by kind tag at
//!   recovery time);
//! * **The envelope** — a tagged wrapper
//!
//!   ```text
//!   sofia-checkpoint v2
//!   model <kind>
//!   steps <n>
//!   <model-specific payload…>
//!   ```
//!
//!   so one on-disk format carries every model kind. [`parse`] also
//!   accepts bare **v1** files (header `sofia-checkpoint v1`) and reports
//!   them as `kind = "sofia"` with the whole text as payload, so
//!   checkpoints written before the envelope existed keep loading
//!   bit-exactly.
//!
//! Payloads are line-oriented text with floats encoded as IEEE 754 bit
//! patterns (see [`wire`]), the same convention the v1 format uses:
//! restore is **bit-exact** for every model that implements the traits.

use crate::checkpoint::{self, CheckpointError};
use crate::model::Sofia;

/// Line-oriented wire helpers shared by snapshot payload writers/parsers
/// (the v1 SOFIA checkpoint and every per-model v2 payload use these).
///
/// Floats travel as 16-hex-digit IEEE 754 bit patterns so round-trips are
/// bit-exact; integers as plain decimal.
pub mod wire {
    use super::CheckpointError;
    use std::fmt::Write as _;

    /// Appends `label v1 v2 …` with each float as its hex bit pattern.
    pub fn push_f64s(out: &mut String, label: &str, values: impl IntoIterator<Item = f64>) {
        let _ = write!(out, "{label}");
        for v in values {
            let _ = write!(out, " {:016x}", v.to_bits());
        }
        out.push('\n');
    }

    /// Parses a `label v1 v2 …` line of hex-encoded floats.
    pub fn parse_f64s(line: &str, label: &str) -> Result<Vec<f64>, CheckpointError> {
        let rest = line
            .strip_prefix(label)
            .ok_or_else(|| CheckpointError::Malformed(format!("expected `{label}`")))?;
        rest.split_whitespace()
            .map(|tok| {
                u64::from_str_radix(tok, 16)
                    .map(f64::from_bits)
                    .map_err(|_| CheckpointError::Malformed(format!("bad float in `{label}`")))
            })
            .collect()
    }

    /// Parses a `label n1 n2 …` line of decimal integers.
    pub fn parse_usizes(line: &str, label: &str) -> Result<Vec<usize>, CheckpointError> {
        let rest = line
            .strip_prefix(label)
            .ok_or_else(|| CheckpointError::Malformed(format!("expected `{label}`")))?;
        rest.split_whitespace()
            .map(|tok| {
                tok.parse()
                    .map_err(|_| CheckpointError::Malformed(format!("bad integer in `{label}`")))
            })
            .collect()
    }
}

/// The snapshot capability: a model that can serialize its full streaming
/// state to a bit-exact text payload.
///
/// The trait is deliberately **object-safe** so serving layers can ask a
/// boxed `dyn` model for a snapshot without knowing its concrete type;
/// the inverse direction ([`RestoreModel`]) is dispatched by the
/// [`SnapshotModel::snapshot_kind`] tag instead.
pub trait SnapshotModel {
    /// Stable kind tag written into the envelope's `model <kind>` header
    /// and used to dispatch [`RestoreModel::restore`] at recovery time.
    fn snapshot_kind(&self) -> &'static str;

    /// Serializes the model's full state. Restoring the returned payload
    /// with the matching [`RestoreModel`] impl must yield a model whose
    /// subsequent outputs are byte-identical to this one's.
    fn snapshot(&self) -> String;
}

/// The restore half of the snapshot capability (not object-safe — it
/// constructs `Self`; recovery code matches on the envelope's kind tag
/// and calls the right impl).
pub trait RestoreModel: Sized {
    /// The kind tag this impl restores; must equal what
    /// [`SnapshotModel::snapshot_kind`] reports on the same type.
    const KIND: &'static str;

    /// Rebuilds a model from a payload produced by
    /// [`SnapshotModel::snapshot`].
    fn restore(payload: &str) -> Result<Self, CheckpointError>;
}

/// Header line of the v2 envelope.
pub const V2_HEADER: &str = "sofia-checkpoint v2";
/// Header line of the bare v1 SOFIA format (accepted by [`parse`]).
pub const V1_HEADER: &str = "sofia-checkpoint v1";

/// A parsed checkpoint envelope: which model kind the payload belongs to,
/// the generic applied-steps counter at snapshot time, and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Model kind tag (`sofia`, `smf`, `online-sgd`, …).
    pub kind: String,
    /// Streaming steps the model had applied when the snapshot was taken
    /// (the serving layer's generic counter, uniform across model kinds).
    pub steps: u64,
    /// The model-specific payload, byte-for-byte as written.
    pub payload: String,
}

/// Wraps a model payload in the v2 envelope.
pub fn wrap(kind: &str, steps: u64, payload: &str) -> String {
    assert!(
        !kind.is_empty() && kind.chars().all(|c| c.is_ascii_graphic()),
        "kind tag must be non-empty printable ASCII: {kind:?}"
    );
    let mut out = String::with_capacity(payload.len() + 64);
    out.push_str(V2_HEADER);
    out.push('\n');
    out.push_str("model ");
    out.push_str(kind);
    out.push('\n');
    out.push_str("steps ");
    out.push_str(&steps.to_string());
    out.push('\n');
    out.push_str(payload);
    out
}

/// Splits off the first line, returning `(line, rest)` with the newline
/// consumed. Byte-offset based so the remainder is passed through
/// untouched (payloads must stay byte-exact).
fn split_line(text: &str) -> (&str, &str) {
    match text.find('\n') {
        Some(i) => (&text[..i], &text[i + 1..]),
        None => (text, ""),
    }
}

/// Parses a checkpoint file into an [`Envelope`].
///
/// Accepts both the tagged v2 format and bare v1 SOFIA files: a v1 file
/// comes back as `kind = "sofia"` whose payload is the entire original
/// text (v1 never had an envelope, so the payload *is* the file), with
/// `steps` read from the v1 trailer line.
pub fn parse(text: &str) -> Result<Envelope, CheckpointError> {
    let (header, rest) = split_line(text);
    match header.trim_end() {
        V2_HEADER => {
            let (model_line, rest) = split_line(rest);
            let kind = model_line
                .strip_prefix("model ")
                .map(str::trim)
                .filter(|k| !k.is_empty())
                .ok_or_else(|| CheckpointError::Malformed("envelope `model` line".into()))?;
            let (steps_line, payload) = split_line(rest);
            let steps = steps_line
                .strip_prefix("steps ")
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| CheckpointError::Malformed("envelope `steps` line".into()))?;
            Ok(Envelope {
                kind: kind.to_string(),
                steps,
                payload: payload.to_string(),
            })
        }
        V1_HEADER => {
            // Pre-envelope SOFIA file: the v1 format ends with a
            // `steps <n>` trailer; surface it as the envelope counter.
            let steps = text
                .lines()
                .rev()
                .find_map(|l| l.strip_prefix("steps "))
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| CheckpointError::Malformed("v1 `steps` trailer".into()))?;
            Ok(Envelope {
                kind: Sofia::KIND.to_string(),
                steps,
                payload: text.to_string(),
            })
        }
        _ => Err(CheckpointError::BadHeader),
    }
}

impl SnapshotModel for Sofia {
    fn snapshot_kind(&self) -> &'static str {
        Sofia::KIND
    }

    /// The SOFIA payload is exactly the bit-exact v1 text, so a v2
    /// envelope nests the complete v1 file and either parser restores the
    /// same state.
    fn snapshot(&self) -> String {
        checkpoint::save(self)
    }
}

impl RestoreModel for Sofia {
    const KIND: &'static str = "sofia";

    fn restore(payload: &str) -> Result<Self, CheckpointError> {
        checkpoint::load(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrips_payload_bytes() {
        let payload = "alpha 1 2 3\nbeta\n\ntail without newline";
        let text = wrap("demo-kind", 42, payload);
        let env = parse(&text).expect("parse");
        assert_eq!(env.kind, "demo-kind");
        assert_eq!(env.steps, 42);
        assert_eq!(env.payload, payload);
    }

    #[test]
    fn empty_payload_allowed() {
        let env = parse(&wrap("k", 0, "")).expect("parse");
        assert_eq!(env.kind, "k");
        assert_eq!(env.steps, 0);
        assert_eq!(env.payload, "");
    }

    #[test]
    fn v1_text_parses_as_sofia_envelope() {
        // A minimal structurally-v1 text: only the header and trailer
        // matter to the envelope layer.
        let text = "sofia-checkpoint v1\nconfig 1 2 3 4 5 6\nsteps 17\n";
        let env = parse(text).expect("parse");
        assert_eq!(env.kind, Sofia::KIND);
        assert_eq!(env.steps, 17);
        assert_eq!(env.payload, text, "v1 payload is the whole file");
    }

    #[test]
    fn malformed_envelopes_rejected() {
        assert!(matches!(
            parse("garbage\n"),
            Err(CheckpointError::BadHeader)
        ));
        assert!(matches!(parse(""), Err(CheckpointError::BadHeader)));
        assert!(parse("sofia-checkpoint v2\nnot-model\nsteps 0\n").is_err());
        assert!(parse("sofia-checkpoint v2\nmodel x\nsteps nope\n").is_err());
        assert!(parse("sofia-checkpoint v2\nmodel \nsteps 1\n").is_err());
        // v1 without its steps trailer cannot express the counter.
        assert!(parse("sofia-checkpoint v1\nconfig 1\n").is_err());
    }

    #[test]
    #[should_panic(expected = "kind tag")]
    fn wrap_rejects_unprintable_kind() {
        wrap("two words", 0, "");
    }

    #[test]
    fn wire_roundtrips_special_floats() {
        let values = [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1.5e-300];
        let mut line = String::new();
        wire::push_f64s(&mut line, "v", values.iter().copied());
        let back = wire::parse_f64s(line.trim_end(), "v").expect("parse");
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
