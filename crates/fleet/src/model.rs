//! The model slot held by a shard: any [`StreamingFactorizer`], with
//! checkpoint support when the concrete type provides it.

use sofia_core::checkpoint;
use sofia_core::traits::{StepOutput, StreamingFactorizer};
use sofia_core::Sofia;
use sofia_tensor::{DenseTensor, ObservedTensor};

/// A model instance owned by a shard worker.
///
/// The engine serves SOFIA models and arbitrary baselines through the
/// same registry; the enum keeps the concrete [`Sofia`] type visible so
/// durability can use the bit-exact `sofia_core::checkpoint` text format.
/// Baselines are served but not checkpointed (the format is
/// SOFIA-specific); [`ModelHandle::checkpoint_text`] returns `None` for
/// them and the durability layer skips the stream.
pub enum ModelHandle {
    /// A SOFIA model — checkpointable.
    Sofia(Box<Sofia>),
    /// Any other streaming factorizer (baselines, mocks) — served, not
    /// checkpointed.
    Dyn(Box<dyn StreamingFactorizer + Send>),
}

impl ModelHandle {
    /// Wraps a SOFIA model.
    pub fn sofia(model: Sofia) -> Self {
        ModelHandle::Sofia(Box::new(model))
    }

    /// Wraps any other factorizer.
    pub fn boxed(model: Box<dyn StreamingFactorizer + Send>) -> Self {
        ModelHandle::Dyn(model)
    }

    /// Method name, as reported by the underlying model.
    pub fn name(&self) -> &'static str {
        match self {
            ModelHandle::Sofia(m) => StreamingFactorizer::name(m.as_ref()),
            ModelHandle::Dyn(m) => m.name(),
        }
    }

    /// Applies one streaming step.
    pub fn step(&mut self, slice: &ObservedTensor) -> StepOutput {
        match self {
            ModelHandle::Sofia(m) => StreamingFactorizer::step(m.as_mut(), slice),
            ModelHandle::Dyn(m) => m.step(slice),
        }
    }

    /// Forecasts `h` steps ahead, if the model supports forecasting.
    pub fn forecast(&self, h: usize) -> Option<DenseTensor> {
        match self {
            ModelHandle::Sofia(m) => StreamingFactorizer::forecast(m.as_ref(), h),
            ModelHandle::Dyn(m) => m.forecast(h),
        }
    }

    /// Serializes the model in the bit-exact checkpoint format, or `None`
    /// if the concrete type has no checkpoint support.
    pub fn checkpoint_text(&self) -> Option<String> {
        match self {
            ModelHandle::Sofia(m) => Some(checkpoint::save(m)),
            ModelHandle::Dyn(_) => None,
        }
    }

    /// Steps already applied according to the model's own state (SOFIA
    /// tracks this through checkpoints; other models report 0).
    pub fn model_steps(&self) -> u64 {
        match self {
            ModelHandle::Sofia(m) => m.dynamic().steps() as u64,
            ModelHandle::Dyn(_) => 0,
        }
    }
}

impl std::fmt::Debug for ModelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelHandle::Sofia(_) => write!(f, "ModelHandle::Sofia"),
            ModelHandle::Dyn(m) => write!(f, "ModelHandle::Dyn({})", m.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_tensor::Shape;

    /// Minimal non-SOFIA model for engine tests: echoes the observed
    /// values as the completion.
    #[derive(Debug, Clone, Default)]
    pub struct Echo;

    impl StreamingFactorizer for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn step(&mut self, slice: &ObservedTensor) -> StepOutput {
            StepOutput {
                completed: slice.values().clone(),
                outliers: None,
            }
        }
    }

    // The whole point of the enum: handles must be movable into shard
    // worker threads.
    const _: fn() = || {
        fn assert_send<T: Send>() {}
        assert_send::<ModelHandle>();
    };

    #[test]
    fn dyn_handle_serves_but_does_not_checkpoint() {
        let mut h = ModelHandle::boxed(Box::new(Echo));
        assert_eq!(h.name(), "echo");
        let slice = ObservedTensor::fully_observed(DenseTensor::full(Shape::new(&[2, 2]), 3.0));
        let out = h.step(&slice);
        assert_eq!(out.completed.data(), slice.values().data());
        assert!(h.forecast(1).is_none());
        assert!(h.checkpoint_text().is_none());
        assert_eq!(h.model_steps(), 0);
    }
}
