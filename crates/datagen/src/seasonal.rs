//! Low-rank seasonal stream generators.
//!
//! The workhorse is [`SeasonalStream`]: a rank-`R` CP stream whose temporal
//! components are sinusoids with per-component amplitude, phase, offset,
//! and optional linear trend — the construction used for the paper's
//! synthetic experiments (Figure 2 uses
//! `ũ⁽³⁾ᵣ = aᵣ·sin((2π/m)·i + bᵣ) + cᵣ` with `aᵣ, cᵣ ∈ U[−2,2]`,
//! `bᵣ ∈ U[0,2π]`).

use crate::stream::TensorStream;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sofia_tensor::{kruskal, DenseTensor, Matrix, Shape};

/// Parameters of one sinusoidal temporal component:
/// `u_r(t) = amplitude·sin((2π·harmonic/m)·t + phase) + offset + trend·t`.
///
/// `harmonic = 1` gives one cycle per season; higher integers model
/// sub-seasonal structure (e.g., a daily cycle inside a weekly period with
/// `harmonic = 7`) while keeping the overall period `m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeasonalComponent {
    /// Sinusoid amplitude `aᵣ`.
    pub amplitude: f64,
    /// Phase shift `bᵣ` (radians).
    pub phase: f64,
    /// Constant offset `cᵣ`.
    pub offset: f64,
    /// Linear trend per time step (0 in the paper's Fig. 2 construction).
    pub trend: f64,
    /// Frequency multiplier (cycles per season).
    pub harmonic: f64,
}

impl SeasonalComponent {
    /// A plain one-cycle-per-season component.
    pub fn simple(amplitude: f64, phase: f64, offset: f64, trend: f64) -> Self {
        Self {
            amplitude,
            phase,
            offset,
            trend,
            harmonic: 1.0,
        }
    }
}

/// A rank-`R` seasonal CP tensor stream with fixed non-temporal factors
/// and sinusoidal temporal components.
#[derive(Debug, Clone)]
pub struct SeasonalStream {
    factors: Vec<Matrix>,
    components: Vec<SeasonalComponent>,
    period: usize,
    shape: Shape,
    /// Optional i.i.d. Gaussian observation noise added to each entry,
    /// deterministic in `(t, entry)` so slices are reproducible.
    noise_sigma: f64,
    noise_seed: u64,
}

impl SeasonalStream {
    /// Builds a stream from explicit non-temporal factors and components.
    pub fn new(factors: Vec<Matrix>, components: Vec<SeasonalComponent>, period: usize) -> Self {
        assert!(!factors.is_empty(), "need at least one non-temporal mode");
        assert!(period >= 1);
        let rank = factors[0].cols();
        assert!(
            factors.iter().all(|f| f.cols() == rank),
            "factor rank mismatch"
        );
        assert_eq!(components.len(), rank, "one component per rank required");
        let dims: Vec<usize> = factors.iter().map(|f| f.rows()).collect();
        Self {
            factors,
            components,
            period,
            shape: Shape::new(&dims),
            noise_sigma: 0.0,
            noise_seed: 0,
        }
    }

    /// The paper's Figure 2 construction: random non-temporal factors and
    /// random sinusoids (`aᵣ, cᵣ ∈ U[−2,2]`, `bᵣ ∈ U[0,2π]`, no trend).
    pub fn paper_fig2(dims: &[usize], rank: usize, period: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let factors: Vec<Matrix> = dims
            .iter()
            .map(|&d| {
                Matrix::from_fn(d, rank, |_, _| {
                    sofia_tensor::random::sample_standard_normal(&mut rng)
                })
            })
            .collect();
        let components: Vec<SeasonalComponent> = (0..rank)
            .map(|_| SeasonalComponent {
                amplitude: rng.gen_range(-2.0..2.0),
                phase: rng.gen_range(0.0..2.0 * std::f64::consts::PI),
                offset: rng.gen_range(-2.0..2.0),
                trend: 0.0,
                harmonic: 1.0,
            })
            .collect();
        Self::new(factors, components, period)
    }

    /// Adds i.i.d. Gaussian observation noise (deterministic per `(t, i)`).
    pub fn with_noise(mut self, sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0);
        self.noise_sigma = sigma;
        self.noise_seed = seed;
        self
    }

    /// The temporal vector `u(t)` of all components.
    pub fn temporal_at(&self, t: usize) -> Vec<f64> {
        let w = 2.0 * std::f64::consts::PI / self.period as f64;
        self.components
            .iter()
            .map(|c| {
                c.amplitude * (w * c.harmonic * t as f64 + c.phase).sin()
                    + c.offset
                    + c.trend * t as f64
            })
            .collect()
    }

    /// The non-temporal factors.
    pub fn factors(&self) -> &[Matrix] {
        &self.factors
    }

    /// The ground-truth temporal factor matrix for `t ∈ [0, len)` — what
    /// Figure 2 compares recovered factors against.
    pub fn temporal_matrix(&self, len: usize) -> Matrix {
        let rank = self.components.len();
        Matrix::from_fn(len, rank, |t, r| self.temporal_at(t)[r])
    }

    /// Maximum absolute entry over one full season (used to size outlier
    /// magnitudes as `Z · max(X)` per §VI-A).
    pub fn max_abs_over_season(&self) -> f64 {
        (0..self.period)
            .map(|t| self.clean_slice(t).max_abs())
            .fold(0.0, f64::max)
    }
}

impl TensorStream for SeasonalStream {
    fn slice_shape(&self) -> &Shape {
        &self.shape
    }

    fn period(&self) -> usize {
        self.period
    }

    fn clean_slice(&self, t: usize) -> DenseTensor {
        let u = self.temporal_at(t);
        let refs: Vec<&Matrix> = self.factors.iter().collect();
        let mut slice = kruskal::kruskal_slice(&refs, &u);
        if self.noise_sigma > 0.0 {
            // Deterministic per-(t, entry) noise: re-seed per slice.
            let mut rng = SmallRng::seed_from_u64(
                self.noise_seed ^ (t as u64).wrapping_mul(0x9e3779b97f4a7c15),
            );
            for v in slice.data_mut() {
                *v += self.noise_sigma * sofia_tensor::random::sample_standard_normal(&mut rng);
            }
        }
        slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SeasonalStream {
        let factors = vec![
            Matrix::from_rows(&[&[1.0, 0.5], &[2.0, -0.5]]),
            Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 2.0], &[1.0, -1.0]]),
        ];
        let components = vec![
            SeasonalComponent::simple(1.0, 0.0, 2.0, 0.0),
            SeasonalComponent::simple(0.5, 1.0, -1.0, 0.1),
        ];
        SeasonalStream::new(factors, components, 6)
    }

    #[test]
    fn temporal_is_periodic_without_trend() {
        let s = tiny();
        let u0 = s.temporal_at(0);
        let u6 = s.temporal_at(6);
        // Component 0 has no trend: exactly periodic.
        assert!((u0[0] - u6[0]).abs() < 1e-12);
        // Component 1 has trend 0.1: differs by 0.6 over one season.
        assert!((u6[1] - u0[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn clean_slice_matches_kruskal() {
        let s = tiny();
        let slice = s.clean_slice(3);
        let u = s.temporal_at(3);
        let refs: Vec<&Matrix> = s.factors().iter().collect();
        let expected = kruskal::kruskal_slice(&refs, &u);
        assert_eq!(slice.data(), expected.data());
    }

    #[test]
    fn noise_is_deterministic_per_slice() {
        let s = tiny().with_noise(0.5, 42);
        let a = s.clean_slice(5);
        let b = s.clean_slice(5);
        assert_eq!(a.data(), b.data());
        // And differs across t beyond the clean difference.
        let c = s.clean_slice(11); // same phase as 5 plus trend
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn paper_fig2_dimensions() {
        let s = SeasonalStream::paper_fig2(&[30, 30], 3, 30, 7);
        assert_eq!(s.slice_shape().dims(), &[30, 30]);
        assert_eq!(s.period(), 30);
        let temporal = s.temporal_matrix(90);
        assert_eq!(temporal.rows(), 90);
        assert_eq!(temporal.cols(), 3);
        // Amplitudes/offsets bounded by the U[−2,2] construction:
        // |u| ≤ |a| + |c| ≤ 4.
        for t in 0..90 {
            for r in 0..3 {
                assert!(temporal.get(t, r).abs() <= 4.0 + 1e-12);
            }
        }
    }

    #[test]
    fn max_abs_over_season_bounds_slices() {
        let s = tiny();
        let max = s.max_abs_over_season();
        for t in 0..6 {
            assert!(s.clean_slice(t).max_abs() <= max + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "one component per rank")]
    fn component_count_must_match_rank() {
        let factors = vec![Matrix::identity(2), Matrix::identity(2)];
        SeasonalStream::new(
            factors,
            vec![SeasonalComponent::simple(1.0, 0.0, 0.0, 0.0)],
            4,
        );
    }
}
