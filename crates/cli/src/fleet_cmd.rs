//! The `fleet` subcommand: serve many synthetic streams through the
//! sharded engine and report throughput, latency, shard scaling, stream
//! lifecycle, and mixed-kind crash recovery.

use crate::commands::CmdResult;
use sofia_baselines::{OnlineSgd, Smf};
use sofia_core::model::Sofia;
use sofia_core::SofiaConfig;
use sofia_datagen::seasonal::SeasonalStream;
use sofia_datagen::stream::TensorStream;
use sofia_fleet::{
    CheckpointPolicy, Fleet, FleetConfig, MetricKind, ModelHandle, Query, StreamKey,
};
use sofia_tensor::ObservedTensor;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

/// Renders an optional microsecond figure (`123.4us`, `-` when the
/// summary is empty). Shared by every command that prints latency
/// quantiles.
pub(crate) fn fmt_us(v: Option<f64>) -> String {
    v.map(|l| format!("{l:.1}us")).unwrap_or_else(|| "-".into())
}

/// Renders an optional dimensionless quantile (forecast drift is a
/// relative residual norm), `-` when the summary is empty.
pub(crate) fn fmt_q(v: Option<f64>) -> String {
    v.map(|q| format!("{q:.4}")).unwrap_or_else(|| "-".into())
}

/// Parameters of one `fleet` invocation.
pub struct FleetOpts {
    /// Number of concurrent synthetic streams.
    pub streams: usize,
    /// Shard (worker-thread) count for the main run.
    pub shards: usize,
    /// Slices streamed per stream after warm-up.
    pub steps: usize,
    /// CP rank of the synthetic streams and the models.
    pub rank: usize,
    /// Seasonal period of the synthetic streams.
    pub period: usize,
    /// Non-temporal slice dimensions.
    pub dims: Vec<usize>,
    /// Per-shard ingest queue bound.
    pub queue: usize,
    /// Base RNG seed (stream `i` uses `seed + i`).
    pub seed: u64,
    /// Optional durability directory; enables periodic checkpointing and
    /// the post-run crash-recovery report.
    pub checkpoint_dir: Option<PathBuf>,
    /// Periodic checkpoint interval in steps per stream.
    pub checkpoint_every: u64,
    /// Evict snapshot-capable streams idle for this many shard steps
    /// (requires `--checkpoint-dir`).
    pub evict_idle: Option<u64>,
    /// Baseline model kinds (`smf`, `online-sgd`) cycled in among the
    /// SOFIA streams: stream `i` serves kind `[sofia, ..mix][i % (1+n)]`.
    /// Empty = all SOFIA.
    pub mix: Vec<String>,
    /// Additional shard counts to benchmark on the same workload (e.g.
    /// `[1]` to demonstrate 1-shard vs `shards`-shard scaling).
    pub compare_shards: Vec<usize>,
}

impl Default for FleetOpts {
    fn default() -> Self {
        FleetOpts {
            streams: 100,
            shards: 4,
            steps: 40,
            rank: 4,
            period: 8,
            dims: vec![12, 10],
            queue: 256,
            seed: 2021,
            checkpoint_dir: None,
            checkpoint_every: 25,
            evict_idle: None,
            mix: Vec::new(),
            compare_shards: Vec::new(),
        }
    }
}

/// One warm-started serving model; concrete so comparison runs can clone
/// identical initial states into each engine.
pub(crate) enum MixModel {
    // Boxed: a warm-started SOFIA is far larger than the baselines and
    // these live in a Vec.
    Sofia(Box<Sofia>),
    Smf(Smf),
    OnlineSgd(OnlineSgd),
}

impl MixModel {
    pub(crate) fn handle(&self) -> ModelHandle {
        match self {
            MixModel::Sofia(m) => ModelHandle::sofia((**m).clone()),
            MixModel::Smf(m) => ModelHandle::durable(m.clone()),
            MixModel::OnlineSgd(m) => ModelHandle::durable(m.clone()),
        }
    }
}

struct RunOutcome {
    shards: usize,
    wall_secs: f64,
    slices: u64,
    backpressure_retries: u64,
    mean_latency_us: Option<f64>,
    p99_latency_us: Option<f64>,
    max_batch: usize,
    checkpoints: usize,
    evictions: u64,
    restores: u64,
}

/// Shared option validation (`fleet` and `serve` accept the same
/// workload shape; `serve` simply never reads `steps` — its clients
/// drive ingest over the wire).
pub(crate) fn validate(opts: &FleetOpts) -> CmdResult {
    if opts.streams == 0 || opts.steps == 0 {
        return Err("need at least one stream and one step".into());
    }
    if opts.shards == 0
        || opts.queue == 0
        || opts.checkpoint_every == 0
        || opts.evict_idle == Some(0)
        || opts.compare_shards.contains(&0)
    {
        return Err("shards, queue, checkpoint-every, and evict-idle must be positive".into());
    }
    if opts.rank == 0 || opts.period < 2 || opts.dims.contains(&0) {
        return Err("rank and dims must be positive; period must be at least 2".into());
    }
    if opts.evict_idle.is_some() && opts.checkpoint_dir.is_none() {
        return Err(
            "--evict-idle requires --checkpoint-dir (evicted streams restore from it)".into(),
        );
    }
    for kind in &opts.mix {
        if !matches!(kind.as_str(), "sofia" | "smf" | "online-sgd") {
            return Err(format!("unknown --mix kind `{kind}` (use smf, online-sgd)").into());
        }
    }
    Ok(())
}

/// Warm-starts one model per stream (kinds cycled from the mix, SOFIA
/// leading so `stream-0000` always forecasts), fanned out over the
/// available cores. Returns the models, their synthetic source streams,
/// and the startup-window length (slice `t` of stream `i` is
/// `streams[i].clean_slice(startup_len + t)`).
pub(crate) fn warm_start(opts: &FleetOpts) -> (Vec<MixModel>, Vec<SeasonalStream>, usize) {
    // Stream i serves cycle[i % cycle.len()].
    let cycle: Vec<&str> = std::iter::once("sofia")
        .chain(opts.mix.iter().map(String::as_str))
        .collect();
    let model_config = SofiaConfig::new(opts.rank, opts.period)
        .with_lambdas(0.01, 0.01, 10.0)
        .with_als_limits(1e-3, 1, 40);
    let startup_len = model_config.startup_len().max(2 * opts.period);

    // Synthetic workload: one seasonal CP stream per served stream.
    let streams: Vec<SeasonalStream> = (0..opts.streams)
        .map(|i| {
            SeasonalStream::paper_fig2(&opts.dims, opts.rank, opts.period, opts.seed + i as u64)
        })
        .collect();

    let init_start = Instant::now();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(opts.streams);
    let chunk = opts.streams.div_ceil(workers);
    let models: Vec<MixModel> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .chunks(chunk)
            .enumerate()
            .map(|(c, part)| {
                let model_config = model_config.clone();
                let cycle = &cycle;
                scope.spawn(move || {
                    part.iter()
                        .enumerate()
                        .map(|(j, s)| {
                            let i = c * chunk + j;
                            let startup: Vec<ObservedTensor> = (0..startup_len)
                                .map(|t| ObservedTensor::fully_observed(s.clean_slice(t)))
                                .collect();
                            let seed = opts.seed + i as u64;
                            match cycle[i % cycle.len()] {
                                "smf" => MixModel::Smf(Smf::init(
                                    &startup,
                                    opts.rank,
                                    opts.period,
                                    0.1,
                                    seed,
                                )),
                                "online-sgd" => MixModel::OnlineSgd(OnlineSgd::init(
                                    &startup, opts.rank, 0.1, seed,
                                )),
                                _ => MixModel::Sofia(Box::new(
                                    Sofia::init(&model_config, &startup, seed)
                                        .expect("synthetic startup window is well-formed"),
                                )),
                            }
                        })
                        .collect::<Vec<MixModel>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("init worker"))
            .collect()
    });
    println!(
        "init: built {} models in {:.2}s ({} startup slices each, {} init threads)",
        models.len(),
        init_start.elapsed().as_secs_f64(),
        startup_len,
        workers
    );
    (models, streams, startup_len)
}

/// Entry point of `sofia-cli fleet`.
pub fn fleet(opts: &FleetOpts) -> CmdResult {
    validate(opts)?;
    println!(
        "fleet: {} streams x {} slices of {:?} (rank {}, period {}), queue bound {}, mix {:?}",
        opts.streams, opts.steps, opts.dims, opts.rank, opts.period, opts.queue, opts.mix
    );
    let (models, streams, startup_len) = warm_start(opts);

    // --- Pre-materialize the streamed slices so the serving measurement
    // isn't dominated by workload generation on the ingest thread.
    let slices: Vec<Vec<ObservedTensor>> = streams
        .iter()
        .map(|s| {
            (startup_len..startup_len + opts.steps)
                .map(|t| ObservedTensor::fully_observed(s.clean_slice(t)))
                .collect()
        })
        .collect();

    // --- Run once per requested shard count on identical initial models.
    let mut shard_counts = opts.compare_shards.clone();
    shard_counts.push(opts.shards);
    shard_counts.sort_unstable();
    shard_counts.dedup();

    let mut outcomes = Vec::new();
    for &shards in &shard_counts {
        outcomes.push(run_once(opts, shards, &models, &slices)?);
    }

    println!(
        "\n{:>6}  {:>8}  {:>10}  {:>12}  {:>11}  {:>12}  {:>9}  {:>11}",
        "shards",
        "wall(s)",
        "slices/s",
        "mean-lat(us)",
        "p99-lat(us)",
        "backpressure",
        "max-batch",
        "checkpoints"
    );
    for o in &outcomes {
        println!(
            "{:>6}  {:>8.3}  {:>10.0}  {:>12}  {:>11}  {:>12}  {:>9}  {:>11}",
            o.shards,
            o.wall_secs,
            o.slices as f64 / o.wall_secs,
            o.mean_latency_us
                .map(|l| format!("{l:.1}"))
                .unwrap_or_else(|| "-".into()),
            o.p99_latency_us
                .map(|l| format!("{l:.1}"))
                .unwrap_or_else(|| "-".into()),
            o.backpressure_retries,
            o.max_batch,
            o.checkpoints
        );
    }
    if opts.evict_idle.is_some() {
        for o in &outcomes {
            println!(
                "lifecycle [{} shard(s)]: {} evictions, {} lazy restores",
                o.shards, o.evictions, o.restores
            );
        }
    }
    if outcomes.len() > 1 {
        let slowest = outcomes
            .iter()
            .max_by(|a, b| a.wall_secs.total_cmp(&b.wall_secs))
            .expect("nonempty");
        let fastest = outcomes
            .iter()
            .min_by(|a, b| a.wall_secs.total_cmp(&b.wall_secs))
            .expect("nonempty");
        println!(
            "\nscaling: {} shards vs {} shards -> {:.2}x wall-clock speedup \
             (expect ~1x on single-core machines)",
            fastest.shards,
            slowest.shards,
            slowest.wall_secs / fastest.wall_secs
        );
    }

    // --- Crash-recovery report: restore the main run's checkpoint
    // directory into a fresh engine and break the recovered streams down
    // by model kind (the v2 envelope dispatch at work).
    if opts.checkpoint_dir.is_some() {
        recovery_report(opts)?;
    }
    Ok(())
}

fn fleet_config(opts: &FleetOpts, shards: usize) -> FleetConfig {
    let checkpoint = opts.checkpoint_dir.as_ref().map(|dir| {
        // Each shard count gets its own subdirectory so comparison runs
        // never mix durable state.
        CheckpointPolicy::new(dir.join(format!("shards-{shards}")), opts.checkpoint_every)
    });
    FleetConfig {
        shards,
        queue_capacity: opts.queue,
        checkpoint,
        evict_idle_after: opts.evict_idle,
    }
}

fn run_once(
    opts: &FleetOpts,
    shards: usize,
    models: &[MixModel],
    slices: &[Vec<ObservedTensor>],
) -> Result<RunOutcome, Box<dyn std::error::Error>> {
    let fleet = Fleet::new(fleet_config(opts, shards))?;

    let keys: Vec<StreamKey> = models
        .iter()
        .enumerate()
        .map(|(i, m)| fleet.register(&format!("stream-{i:04}"), m.handle()))
        .collect::<Result<_, _>>()?;

    // Ingest slice-major (t over all streams) — the arrival order of a
    // tick-synchronized deployment — with yield-and-retry on
    // backpressure.
    let start = Instant::now();
    let mut retries = 0u64;
    for t in 0..opts.steps {
        for (key, stream_slices) in keys.iter().zip(slices.iter()) {
            retries += fleet.ingest_blocking(key, stream_slices[t].clone())?;
        }
    }
    fleet.flush()?;
    let wall_secs = start.elapsed().as_secs_f64();

    let stats = fleet.fleet_stats()?;
    let slices_done = stats.steps();
    // Exact moments and mergeable quantiles from the latency sketch —
    // the EWMA this table used to print could not be folded across
    // shards without step-weighting bias.
    let latency = stats.ingest_latency();
    let mean_latency_us = latency.mean();
    let p99_latency_us = latency.p99();
    let max_batch = stats.shards.iter().map(|s| s.max_batch).max().unwrap_or(0);
    let evictions = stats.evictions();
    let restores = stats.restores();

    // Exercise the typed query plane once per run on a sample stream:
    // all three requests travel to the owning shard in one batched
    // round-trip (the third is the sketch-backed drift quantile).
    let sample = "stream-0000";
    let mut responses = fleet
        .query_batch(&[
            (
                sample,
                Query::Forecast {
                    horizon: opts.period / 2,
                },
            ),
            (sample, Query::StreamStats),
            (
                sample,
                Query::Quantile {
                    metric: MetricKind::ForecastError,
                    q: 0.99,
                },
            ),
        ])?
        .into_iter();
    let forecast = responses
        .next()
        .expect("aligned")?
        .expect_forecast()
        .expect("SOFIA forecasts");
    let sample_stats = responses.next().expect("aligned")?.expect_stream_stats();
    let drift_p99 = match responses.next().expect("aligned")? {
        sofia_fleet::QueryResponse::Quantile(v) => v,
        other => return Err(format!("expected a quantile response, got {other:?}").into()),
    };
    println!(
        "[{shards} shard(s)] {sample} ({}): {} steps on shard {}, \
         forecast(h={}) |x| = {:.3}, latency p50 {} / p99 {}, drift p99 {}",
        sample_stats.model,
        sample_stats.steps,
        sample_stats.shard,
        opts.period / 2,
        forecast.frobenius_norm(),
        fmt_us(sample_stats.ingest_latency.p50()),
        fmt_us(sample_stats.ingest_latency.p99()),
        fmt_q(drift_p99),
    );

    let checkpoints = fleet.shutdown()?;
    Ok(RunOutcome {
        shards,
        wall_secs,
        slices: slices_done,
        backpressure_retries: retries,
        mean_latency_us,
        p99_latency_us,
        max_batch,
        checkpoints,
        evictions,
        restores,
    })
}

/// Recovers the main run's checkpoints into a fresh engine and reports
/// the restored streams per model kind.
fn recovery_report(opts: &FleetOpts) -> CmdResult {
    let (recovered, n) = Fleet::recover(fleet_config(opts, opts.shards))?;
    let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
    let mut steps_total = 0u64;
    // One batched stats sweep over every recovered stream: a single
    // queue round-trip per shard instead of one per stream.
    let ids = recovered.stream_ids();
    let requests: Vec<(&str, Query)> = ids
        .iter()
        .map(|id| (id.as_str(), Query::StreamStats))
        .collect();
    for response in recovered.query_batch(&requests)? {
        let stats = response?.expect_stream_stats();
        *by_kind.entry(stats.model).or_default() += 1;
        steps_total += stats.steps;
    }
    let breakdown = by_kind
        .iter()
        .map(|(kind, count)| format!("{count} {kind}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "\nrecovery: {n} of {} streams restored from checkpoints ({breakdown}), \
         {steps_total} total steps of state",
        opts.streams
    );
    if n != opts.streams {
        return Err(format!(
            "recovery restored {n} of {} streams — non-durable kinds should not \
             exist in this fleet",
            opts.streams
        )
        .into());
    }
    recovered.shutdown()?;
    Ok(())
}
