//! Loopback integration tests: a real `Server` on `127.0.0.1:0`, a real
//! `Client`, and the engine's strongest guarantees re-proven **across
//! the wire**:
//!
//! * mixed SOFIA+SMF streams registered over the socket (checkpoint
//!   envelopes as the model wire form), ingested over the socket, then
//!   crashed (`Server::abort`) and restarted from the same checkpoint
//!   directory — with forecasts **bit-exact** against an in-process
//!   fleet fed the identical slices (the `recovery.rs` scenario, over
//!   TCP);
//! * pipelined queries on one socket, settled in request order;
//! * flush as the read-your-writes barrier over TCP;
//! * malformed frames and bodies: typed errors, not panics — including
//!   a vendored-proptest fuzz over random byte lines.

use sofia_baselines::Smf;
use sofia_core::config::SofiaConfig;
use sofia_core::Sofia;
use sofia_datagen::seasonal::SeasonalStream;
use sofia_datagen::stream::TensorStream;
use sofia_fleet::{
    CheckpointPolicy, Fleet, FleetConfig, FleetError, ModelHandle, Query, QueryResponse,
};
use sofia_net::wire::{read_frame, write_frame, Request};
use sofia_net::{Client, ClientError, Server};
use sofia_tensor::ObservedTensor;
use std::path::PathBuf;

const PERIOD: usize = 4;
const RANK: usize = 2;
/// Streams 0,2 serve SOFIA; 1,3 serve SMF (mixed on purpose).
const STREAMS: usize = 4;
const PRE_CRASH: usize = 5;
const TOTAL: usize = 9;
/// Not dividing PRE_CRASH, so the crash loses a tail that recovery must
/// replay.
const EVERY: u64 = 2;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sofia-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> SofiaConfig {
    SofiaConfig::new(RANK, PERIOD)
        .with_lambdas(0.01, 0.01, 10.0)
        .with_als_limits(1e-4, 2, 50)
}

fn slices(i: usize) -> (Vec<ObservedTensor>, Vec<ObservedTensor>) {
    let s = SeasonalStream::paper_fig2(&[4, 3], RANK, PERIOD, 300 + i as u64);
    let t0 = 3 * PERIOD;
    let startup = (0..t0)
        .map(|t| ObservedTensor::fully_observed(s.clean_slice(t)))
        .collect();
    let streamed = (t0..t0 + TOTAL)
        .map(|t| ObservedTensor::fully_observed(s.clean_slice(t)))
        .collect();
    (startup, streamed)
}

/// Stream `i`'s model, deterministic so the wire fleet and the
/// in-process control fleet start identical.
fn handle(i: usize, startup: &[ObservedTensor]) -> ModelHandle {
    if i.is_multiple_of(2) {
        ModelHandle::sofia(Sofia::init(&config(), startup, 7 + i as u64).expect("init"))
    } else {
        ModelHandle::durable(Smf::init(startup, RANK, PERIOD, 0.1, 7 + i as u64))
    }
}

fn fleet_config(dir: &PathBuf) -> FleetConfig {
    FleetConfig {
        shards: 2,
        queue_capacity: 64,
        checkpoint: Some(CheckpointPolicy::new(dir, EVERY)),
        evict_idle_after: None,
    }
}

fn expect_forecast(resp: QueryResponse) -> Vec<u64> {
    resp.expect_forecast()
        .expect("mixed kinds here all forecast")
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// The acceptance scenario: register + ingest over the socket, crash,
/// restart from the same checkpoint dir, replay, and compare bit-exact
/// against an in-process fleet that never crashed.
#[test]
fn wire_crash_recovery_matches_in_process_fleet_bit_exactly() {
    let dir = tempdir("crash");

    // --- In-process control fleet: same models, same slices, no crash,
    // no network.
    let control = Fleet::new(FleetConfig {
        shards: 2,
        queue_capacity: 64,
        checkpoint: None,
        evict_idle_after: None,
    })
    .expect("control fleet");
    let mut streamed_slices = Vec::new();
    for i in 0..STREAMS {
        let (startup, streamed) = slices(i);
        control
            .register(&format!("net-{i}"), handle(i, &startup))
            .expect("register control");
        streamed_slices.push(streamed);
    }
    for t in 0..TOTAL {
        for (i, streamed) in streamed_slices.iter().enumerate() {
            control
                .try_ingest_id(&format!("net-{i}"), streamed[t].clone())
                .expect("control ingest");
        }
    }
    control.flush().expect("control flush");

    // --- Wire fleet: an empty engine behind a TCP server; streams are
    // registered by shipping checkpoint envelopes over the socket.
    let server = Server::bind(
        "127.0.0.1:0",
        Fleet::new(fleet_config(&dir)).expect("fleet"),
    )
    .expect("bind");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.shard_map().shards(), 2);
    assert_eq!(client.shard_map().endpoint_of("anything"), addr.to_string());

    for i in 0..STREAMS {
        let (startup, _) = slices(i);
        client
            .register(&format!("net-{i}"), &handle(i, &startup))
            .expect("register over the wire");
    }
    // Registering the same id again is a typed error, not a hang.
    let (startup0, _) = slices(0);
    match client.register("net-0", &handle(0, &startup0)) {
        Err(ClientError::Fleet(FleetError::DuplicateStream(id))) => assert_eq!(id, "net-0"),
        other => panic!("expected DuplicateStream, got {other:?}"),
    }

    // Ingest the pre-crash slices over the socket (batched, seq-tagged).
    for (i, streamed) in streamed_slices.iter().enumerate() {
        let batch: Vec<ObservedTensor> = streamed[..PRE_CRASH].to_vec();
        client
            .ingest_blocking(&format!("net-{i}"), batch)
            .expect("wire ingest");
    }
    // flush = read-your-writes over TCP: after it, steps are visible.
    client.flush().expect("flush");
    for i in 0..STREAMS {
        let stats = client
            .query(&format!("net-{i}"), Query::StreamStats)
            .expect("stats")
            .expect_stream_stats();
        assert_eq!(stats.steps, PRE_CRASH as u64, "net-{i} steps visible");
        assert_eq!(
            stats.model,
            if i % 2 == 0 { "SOFIA" } else { "SMF" },
            "net-{i} kind"
        );
    }

    // --- Crash: no drain, no final checkpoints; only the periodic
    // checkpoints (latest boundary: floor(5/2)*2 = 4) survive.
    server.abort();

    // --- Restart a fresh server from the same checkpoint directory.
    let (recovered, n) = Fleet::recover(fleet_config(&dir)).expect("recover");
    assert_eq!(n, STREAMS, "every stream restored from disk");
    let server = Server::bind("127.0.0.1:0", recovered).expect("rebind");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");

    // Replay the lost tail and continue past the crash point, all over
    // the socket.
    let boundary = ((PRE_CRASH as u64 / EVERY) * EVERY) as usize;
    for (i, streamed) in streamed_slices.iter().enumerate() {
        let id = format!("net-{i}");
        let stats = client
            .query(&id, Query::StreamStats)
            .expect("stats")
            .expect_stream_stats();
        assert_eq!(stats.steps as usize, boundary, "{id} resumed at boundary");
        let tail: Vec<ObservedTensor> = streamed[boundary..].to_vec();
        client.ingest_blocking(&id, tail).expect("replay");
    }
    client.flush().expect("flush");

    // --- The decisive assertion: forecasts served over TCP from the
    // crashed-and-recovered fleet are bit-identical to the in-process
    // fleet that never crashed (and never touched a socket).
    for i in 0..STREAMS {
        let id = format!("net-{i}");
        let over_wire = expect_forecast(
            client
                .query(&id, Query::Forecast { horizon: 3 })
                .expect("wire forecast"),
        );
        let in_process = expect_forecast(
            control
                .query(&id, Query::Forecast { horizon: 3 })
                .expect("query")
                .wait()
                .expect("control forecast"),
        );
        assert_eq!(over_wire, in_process, "{id}: wire vs in-process forecast");
        // Latest completed slices agree bit-exactly too.
        let wire_latest = client
            .query(&id, Query::Latest)
            .expect("latest")
            .expect_latest()
            .expect("stepped");
        let control_latest = control
            .query(&id, Query::Latest)
            .expect("query")
            .wait()
            .expect("latest")
            .expect_latest()
            .expect("stepped");
        assert_eq!(
            wire_latest.completed.data(),
            control_latest.completed.data(),
            "{id}: latest diverged"
        );
    }

    // Graceful shutdown via the client this time: final checkpoints.
    client.shutdown_server().expect("shutdown frame");
    control.shutdown().expect("control shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_queries_batches_and_stats_over_loopback() {
    let dir = tempdir("pipeline");
    let fleet = Fleet::new(FleetConfig {
        shards: 2,
        queue_capacity: 64,
        checkpoint: Some(CheckpointPolicy::new(&dir, 1_000)),
        evict_idle_after: None,
    })
    .expect("fleet");
    // Pre-register in-process (a server wraps a *running* fleet).
    let mut streamed_slices = Vec::new();
    for i in 0..3 {
        let (startup, streamed) = slices(i);
        fleet
            .register(&format!("p-{i}"), handle(i, &startup))
            .expect("register");
        streamed_slices.push(streamed);
    }
    let server = Server::bind("127.0.0.1:0", fleet).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for (i, streamed) in streamed_slices.iter().enumerate() {
        client
            .ingest_blocking(&format!("p-{i}"), streamed[..2].to_vec())
            .expect("ingest");
    }
    client.flush().expect("flush");

    // Pipelined: all frames written before any reply is read; replies
    // settle in order, including a typed per-item failure.
    let responses = client
        .query_pipelined(&[
            ("p-0", Query::Latest),
            ("ghost", Query::Latest),
            ("p-1", Query::Forecast { horizon: 2 }),
            ("p-2", Query::StreamStats),
            ("p-0", Query::OutlierMask),
        ])
        .expect("pipeline");
    assert_eq!(responses.len(), 5);
    assert!(matches!(responses[0], Ok(QueryResponse::Latest(Some(_)))));
    assert!(matches!(responses[1], Err(FleetError::UnknownStream(_))));
    assert!(matches!(responses[2], Ok(QueryResponse::Forecast(Some(_)))));
    let Ok(QueryResponse::StreamStats(ref stats)) = responses[3] else {
        panic!("aligned responses");
    };
    assert_eq!(stats.stream, "p-2");
    assert_eq!(stats.steps, 2);
    assert!(matches!(responses[4], Ok(QueryResponse::OutlierMask(_))));

    // One-frame batch: same alignment contract as Fleet::query_batch,
    // and the server answers with one shard round-trip per involved
    // shard (visible in query_batches growing by at most the shard
    // count).
    let before = client.stats().expect("stats").query_batches();
    let batch = client
        .query_batch(&[
            ("p-0", Query::StreamStats),
            ("p-1", Query::StreamStats),
            ("p-2", Query::Forecast { horizon: 0 }),
        ])
        .expect("batch");
    assert!(matches!(batch[2], Err(FleetError::InvalidQuery { .. })));
    let after = client.stats().expect("stats").query_batches();
    assert!(
        after - before <= 2,
        "a wire batch costs at most one round-trip per involved shard \
         (got {} extra)",
        after - before
    );

    // Invalid queries are rejected before any shard sees them.
    match client.query("p-0", Query::Forecast { horizon: 0 }) {
        Err(ClientError::Fleet(FleetError::InvalidQuery { .. })) => {}
        other => panic!("expected InvalidQuery, got {other:?}"),
    }

    // Stats round-trip carries real serving numbers.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.steps(), 6, "3 streams x 2 slices");

    client.shutdown_server().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_survives_malformed_and_oversized_frames() {
    use std::io::BufReader;
    use std::net::TcpStream;

    let fleet = Fleet::new(FleetConfig::with_shards(1)).expect("fleet");
    let server = Server::bind("127.0.0.1:0", fleet).expect("bind");
    let addr = server.local_addr();

    // A raw peer that never says hello and sends garbage bytes: the
    // server answers with a typed error (or just closes) — it must not
    // crash, and must keep serving real clients afterwards.
    {
        use std::io::Write as _;
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        // Whatever comes back (an err frame or EOF), it arrives promptly.
        let _ = read_frame(&mut reader, 1 << 20);
    }

    // A peer that handshakes, then announces an absurd frame length:
    // typed err reply, then the server closes that connection.
    {
        use std::io::Write as _;
        let mut raw = TcpStream::connect(addr).expect("connect");
        let hello = Request::Hello {
            client: "fuzz".into(),
        };
        write_frame(&mut raw, &hello.to_body()).expect("hello");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let map_reply = read_frame(&mut reader, 1 << 20).expect("map").unwrap();
        assert!(map_reply.starts_with("ok 0\nshardmap"));
        raw.write_all(b"#999999999999\n").expect("announce");
        let reply = read_frame(&mut reader, 1 << 20).expect("reply").unwrap();
        assert!(reply.starts_with("err 0"), "typed oversize reply: {reply}");
        // Connection is closed afterwards.
        assert!(matches!(read_frame(&mut reader, 1 << 20), Ok(None)));
    }

    // A well-framed but malformed body: typed err, connection stays up.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        let hello = Request::Hello {
            client: "fuzz2".into(),
        };
        write_frame(&mut raw, &hello.to_body()).expect("hello");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        read_frame(&mut reader, 1 << 20).expect("map").unwrap();
        write_frame(&mut raw, "warp-speed 9").expect("bad body");
        let reply = read_frame(&mut reader, 1 << 20).expect("reply").unwrap();
        assert!(reply.starts_with("err 0"), "typed reply: {reply}");
        // Still aligned: a real request on the same connection works.
        write_frame(&mut raw, &Request::Stats { id: 4 }.to_body()).expect("stats");
        let reply = read_frame(&mut reader, 1 << 20).expect("reply").unwrap();
        assert!(reply.starts_with("ok 4\nshards 1"), "{reply}");
    }

    // A real client still gets served after all that abuse.
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.stats().expect("stats").shards.len(), 1);

    server.shutdown().expect("shutdown");
}

#[test]
fn large_ingest_batches_chunk_under_the_frame_bound() {
    let fleet = Fleet::new(FleetConfig::with_shards(1)).expect("fleet");
    let (startup, _) = slices(0);
    fleet
        .register("chunky", handle(1, &startup))
        .expect("register");
    let server = Server::bind("127.0.0.1:0", fleet).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // A tiny client-side frame bound forces the 20-slice batch into
    // several ingest frames (each 4x3 slice encodes to ~300 bytes, so
    // a 2 KiB chunk target holds only a handful); every slice must
    // still be applied, in order.
    client.set_max_frame_bytes(4096);
    let s = SeasonalStream::paper_fig2(&[4, 3], RANK, PERIOD, 300);
    let batch: Vec<ObservedTensor> = (0..20)
        .map(|t| ObservedTensor::fully_observed(s.clean_slice(t)))
        .collect();
    client.ingest_blocking("chunky", batch).expect("ingest");
    client.flush().expect("flush");
    let stats = client
        .query("chunky", Query::StreamStats)
        .expect("stats")
        .expect_stream_stats();
    assert_eq!(stats.steps, 20, "all chunks applied");
    server.shutdown().expect("shutdown");
}

#[test]
fn dropping_a_live_server_winds_down_cleanly() {
    let fleet = Fleet::new(FleetConfig::with_shards(1)).expect("fleet");
    let server = Server::bind("127.0.0.1:0", fleet).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(client.stats().expect("stats").shards.len(), 1);
    // Dropping without an explicit shutdown must join every thread (no
    // hang) and close live connections…
    drop(server);
    // …so the client sees the connection go away instead of wedging.
    assert!(client.stats().is_err());
}

mod fuzz {
    //! Satellite: "parse returns Err, never panics" over random bytes,
    //! with the vendored proptest.
    use super::*;
    use proptest::prelude::*;
    use sofia_fleet::protocol::wire::LineCursor;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Random ASCII-ish lines through every body parser: typed
        /// errors only (round-trippable inputs may parse Ok; the claim
        /// under fuzz is "no panic, no hang").
        #[test]
        fn request_and_response_parsers_are_total(
            bytes in prop::collection::vec(0u8..128, 0..200)
        ) {
            let text: String = bytes.iter().map(|&b| b as char).collect();
            let _ = Request::from_body(&text);
            let _ = QueryResponse::from_wire(&text);
            let _ = Query::from_wire(&text);
            let _ = FleetError::from_wire(&text);
            let _ = sofia_net::wire::split_reply(&text);
            let mut cur = LineCursor::new(&text);
            let _ = sofia_net::wire::ShardMap::parse(&mut cur);
            let mut cur = LineCursor::new(&text);
            let _ = sofia_net::wire::parse_fleet_stats(&mut cur);
        }

        /// Random raw bytes through the frame reader: it returns (Ok or
        /// typed Err) without panicking, on any prefix of any garbage.
        /// (Sampled as u16 and truncated — the vendored proptest has no
        /// inclusive-range strategy, and `0u8..255` would never produce
        /// 0xFF.)
        #[test]
        fn frame_reader_is_total(words in prop::collection::vec(0u16..256, 0..64)) {
            let bytes: Vec<u8> = words.iter().map(|&w| w as u8).collect();
            let mut r = std::io::BufReader::new(&bytes[..]);
            // Drain up to all frames the bytes happen to encode.
            for _ in 0..4 {
                match read_frame(&mut r, 1 << 16) {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }

        /// Structured-ish garbage: a valid verb with random tail bytes
        /// exercises the deep parsers (shape/data/bits) rather than
        /// dying at the verb.
        #[test]
        fn deep_body_parsers_are_total(
            verb in 0usize..6,
            bytes in prop::collection::vec(0u8..128, 0..160)
        ) {
            let verbs = ["query 1 s ", "batch 1 2\n", "ingest 1 s 1\nseq 1\n",
                         "register 1 s\n", "latest some\n", "stream-stats\n"];
            let tail: String = bytes.iter().map(|&b| b as char).collect();
            let text = format!("{}{}", verbs[verb], tail);
            let _ = Request::from_body(&text);
            let _ = QueryResponse::from_wire(&text);
        }
    }
}
