//! Frames and request/reply bodies of the TCP data plane.
//!
//! ## Frame grammar
//!
//! Every message in either direction is one **length-framed** UTF-8 text
//! body:
//!
//! ```text
//! #<len>\n<len bytes of body>
//! ```
//!
//! The body's first line names the message; further lines carry the
//! payload in the encodings of [`sofia_fleet::protocol::wire`] (floats
//! as IEEE 754 hex bit patterns — everything that crosses the socket
//! round-trips bit-exactly). Stream ids are percent-encoded with the
//! checkpoint-filename encoding, so ids with spaces or separators stay
//! one token.
//!
//! Client → server bodies ([`Request`]):
//!
//! ```text
//! hello <client>                       handshake (first frame)
//! query <req-id> <stream> <query…>     one typed query (Query::to_wire)
//! batch <req-id> <n>                   n lines `<stream> <query…>`
//! register <req-id> <stream>           rest of body = checkpoint envelope
//! ingest <req-id> <stream> <n>         n blocks `seq <s>` + shape/data/bits
//! flush <req-id>                       read-your-writes barrier
//! stats <req-id>                       fleet-wide statistics
//! shutdown <req-id>                    graceful server shutdown
//! ```
//!
//! Server → client bodies: `ok <req-id>` followed by the reply payload,
//! or `err <req-id> <fleet-error…>` ([`FleetError::to_wire`]). Replies
//! arrive **in request order**, so a client that writes several frames
//! before reading any reply has that many requests pipelined on one
//! socket.
//!
//! Every parser here is total: oversized, truncated, or non-UTF-8
//! frames and malformed bodies surface as typed errors
//! ([`FrameError`], [`WireError`]) — never a panic — because these
//! functions feed on bytes from the network.

use sofia_fleet::protocol::wire::{self, LineCursor, WireError};
use sofia_fleet::{shard_of, FleetError, FleetStats, Query, QueryCounters, ShardStats};
use sofia_tensor::ObservedTensor;
use std::io::{self, BufRead, Write};

/// Default bound on one frame's body, in bytes (32 MiB). A peer
/// announcing a bigger frame is rejected before any allocation.
pub const MAX_FRAME_BYTES: usize = 32 << 20;

/// Longest accepted `#<len>` header (fits any length under 10^16).
const MAX_HEADER_BYTES: usize = 18;

/// A frame that could not be read: transport trouble or a peer that is
/// not speaking the protocol.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The `#<len>\n` header line is missing or malformed.
    BadHeader(String),
    /// The announced body length exceeds the receiver's bound.
    Oversized {
        /// Announced body length.
        len: usize,
        /// The receiver's bound.
        max: usize,
    },
    /// The connection closed mid-frame.
    Truncated,
    /// The body is not valid UTF-8.
    NotUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::BadHeader(h) => write!(f, "bad frame header `{h}`"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::NotUtf8 => write!(f, "frame body is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one `#<len>\n<body>` frame and flushes.
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    // One buffered write so a frame is one TCP segment when it fits.
    let mut out = Vec::with_capacity(body.len() + MAX_HEADER_BYTES);
    out.extend_from_slice(format!("#{}\n", body.len()).as_bytes());
    out.extend_from_slice(body.as_bytes());
    w.write_all(&out)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` on a clean EOF **at a frame boundary**
/// (the peer hung up between frames); EOF anywhere else is
/// [`FrameError::Truncated`]. Bodies longer than `max` are rejected
/// without being read.
pub fn read_frame(r: &mut impl BufRead, max: usize) -> Result<Option<String>, FrameError> {
    // Header: `#<digits>\n`, read byte-wise (the reader is buffered).
    let mut header = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) if header.is_empty() => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                header.push(byte[0]);
                if header.len() > MAX_HEADER_BYTES {
                    return Err(FrameError::BadHeader(
                        String::from_utf8_lossy(&header).into(),
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let text = std::str::from_utf8(&header).map_err(|_| FrameError::NotUtf8)?;
    let len: usize = text
        .strip_prefix('#')
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| FrameError::BadHeader(text.to_string()))?;
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| FrameError::NotUtf8)
}

/// Percent-encodes a stream id (or other token) for the wire; the
/// checkpoint-filename encoding, reused so one injective escaping rule
/// covers disk and socket.
pub use sofia_fleet::durability::{decode_stream_id, encode_stream_id};

/// One parsed client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake; must be the first frame on a connection.
    Hello {
        /// Free-form client name (diagnostics only).
        client: String,
    },
    /// One typed query against one stream.
    Query {
        /// Pipelining id, echoed by the reply.
        id: u64,
        /// Target stream.
        stream: String,
        /// The request, exactly as the in-process plane types it.
        query: Query,
    },
    /// A multi-stream batch, answered with one queue round-trip per
    /// involved shard (item replies stay aligned with the items).
    QueryBatch {
        /// Pipelining id.
        id: u64,
        /// `(stream, query)` items, in reply order.
        items: Vec<(String, Query)>,
    },
    /// Install a model for a new stream; the payload is a checkpoint
    /// envelope (`ModelHandle::checkpoint_text`), restored server-side
    /// through the same bit-exact path crash recovery uses.
    Register {
        /// Pipelining id.
        id: u64,
        /// Stream id to register.
        stream: String,
        /// The checkpoint envelope, byte-for-byte.
        envelope: String,
    },
    /// Batched data-plane ingest for one stream: slices with client
    /// sequence numbers, applied in order until the shard pushes back.
    Ingest {
        /// Pipelining id.
        id: u64,
        /// Target stream.
        stream: String,
        /// `(seq, slice)` in ingest order.
        slices: Vec<(u64, ObservedTensor)>,
    },
    /// Read-your-writes barrier ([`sofia_fleet::Fleet::flush`] over TCP).
    Flush {
        /// Pipelining id.
        id: u64,
    },
    /// Fleet-wide statistics snapshot.
    Stats {
        /// Pipelining id.
        id: u64,
    },
    /// Ask the server to drain and exit gracefully.
    Shutdown {
        /// Pipelining id.
        id: u64,
    },
}

impl Request {
    /// The request's pipelining id (0 for the handshake).
    pub fn id(&self) -> u64 {
        match self {
            Request::Hello { .. } => 0,
            Request::Query { id, .. }
            | Request::QueryBatch { id, .. }
            | Request::Register { id, .. }
            | Request::Ingest { id, .. }
            | Request::Flush { id }
            | Request::Stats { id }
            | Request::Shutdown { id } => *id,
        }
    }

    /// Serializes the request into one frame body.
    pub fn to_body(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match self {
            Request::Hello { client } => {
                let _ = writeln!(out, "hello {}", encode_stream_id(client));
            }
            Request::Query { id, stream, query } => {
                let _ = writeln!(
                    out,
                    "query {id} {} {}",
                    encode_stream_id(stream),
                    query.to_wire()
                );
            }
            Request::QueryBatch { id, items } => {
                let _ = writeln!(out, "batch {id} {}", items.len());
                for (stream, query) in items {
                    let _ = writeln!(out, "{} {}", encode_stream_id(stream), query.to_wire());
                }
            }
            Request::Register {
                id,
                stream,
                envelope,
            } => {
                let _ = writeln!(out, "register {id} {}", encode_stream_id(stream));
                out.push_str(envelope);
            }
            Request::Ingest { id, stream, slices } => {
                out.push_str(&ingest_body(*id, stream, slices));
            }
            Request::Flush { id } => {
                let _ = writeln!(out, "flush {id}");
            }
            Request::Stats { id } => {
                let _ = writeln!(out, "stats {id}");
            }
            Request::Shutdown { id } => {
                let _ = writeln!(out, "shutdown {id}");
            }
        }
        out
    }

    /// Parses a frame body into a request. Total: every malformed body
    /// is a typed [`WireError`].
    pub fn from_body(body: &str) -> Result<Request, WireError> {
        let (head, rest) = match body.find('\n') {
            Some(i) => (&body[..i], &body[i + 1..]),
            None => (body, ""),
        };
        fn int<'a>(
            toks: &mut impl Iterator<Item = &'a str>,
            verb: &str,
            what: &str,
        ) -> Result<u64, WireError> {
            let tok = toks
                .next()
                .ok_or_else(|| WireError::new(format!("`{verb}` needs a {what}")))?;
            tok.parse()
                .map_err(|_| WireError::new(format!("bad {what} `{tok}`")))
        }
        let mut toks = head.split_whitespace();
        let verb = toks.next().ok_or_else(|| WireError::new("empty request"))?;
        let req = match verb {
            "hello" => {
                let enc = toks.next().unwrap_or("");
                Request::Hello {
                    client: decode_stream_id(enc)
                        .ok_or_else(|| WireError::new("undecodable client name"))?,
                }
            }
            "query" => {
                let id = int(&mut toks, verb, "request id")?;
                let stream = toks
                    .next()
                    .and_then(decode_stream_id)
                    .ok_or_else(|| WireError::new("query needs a stream id"))?;
                let line: Vec<&str> = toks.collect();
                let query = Query::from_wire_line(&line.join(" "))?;
                return finish_single_line(rest, Request::Query { id, stream, query });
            }
            "batch" => {
                let id = int(&mut toks, verb, "request id")?;
                let n = int(&mut toks, verb, "item count")? as usize;
                if n > MAX_BATCH_ITEMS {
                    return Err(WireError::new(format!(
                        "batch of {n} items exceeds the bound of {MAX_BATCH_ITEMS}"
                    )));
                }
                let mut cur = LineCursor::new(rest);
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let line = cur.next("batch item")?;
                    let (enc, query_line) = line
                        .split_once(' ')
                        .ok_or_else(|| WireError::new(format!("bad batch item `{line}`")))?;
                    let stream = decode_stream_id(enc)
                        .ok_or_else(|| WireError::new("undecodable stream id"))?;
                    items.push((stream, Query::from_wire_line(query_line)?));
                }
                cur.finish()?;
                return Ok(Request::QueryBatch { id, items });
            }
            "register" => {
                let id = int(&mut toks, verb, "request id")?;
                let stream = toks
                    .next()
                    .and_then(decode_stream_id)
                    .ok_or_else(|| WireError::new("register needs a stream id"))?;
                // The envelope is the rest of the body, byte-for-byte
                // (its payload must stay bit-exact).
                return Ok(Request::Register {
                    id,
                    stream,
                    envelope: rest.to_string(),
                });
            }
            "ingest" => {
                let id = int(&mut toks, verb, "request id")?;
                let stream = toks
                    .next()
                    .and_then(decode_stream_id)
                    .ok_or_else(|| WireError::new("ingest needs a stream id"))?;
                let n = int(&mut toks, verb, "slice count")? as usize;
                if n > MAX_BATCH_ITEMS {
                    return Err(WireError::new(format!(
                        "ingest of {n} slices exceeds the bound of {MAX_BATCH_ITEMS}"
                    )));
                }
                let mut cur = LineCursor::new(rest);
                let mut slices = Vec::with_capacity(n);
                for _ in 0..n {
                    let seq_line = cur.next("slice sequence number")?;
                    let seq = seq_line
                        .strip_prefix("seq ")
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| WireError::new(format!("bad seq line `{seq_line}`")))?;
                    slices.push((seq, wire::parse_observed(&mut cur)?));
                }
                cur.finish()?;
                return Ok(Request::Ingest { id, stream, slices });
            }
            "flush" => Request::Flush {
                id: int(&mut toks, verb, "request id")?,
            },
            "stats" => Request::Stats {
                id: int(&mut toks, verb, "request id")?,
            },
            "shutdown" => Request::Shutdown {
                id: int(&mut toks, verb, "request id")?,
            },
            other => return Err(WireError::new(format!("unknown request `{other}`"))),
        };
        if toks.next().is_some() {
            return Err(WireError::new(format!("trailing token in `{head}`")));
        }
        finish_single_line(rest, req)
    }
}

/// Upper bound on items in one batch/ingest frame (a second line of
/// defence behind the frame-size bound).
pub const MAX_BATCH_ITEMS: usize = 65_536;

/// Serializes an `ingest` frame body from **borrowed** slices, so a
/// client can keep the originals as its backpressure hand-back source
/// without cloning the tensors ([`Request::to_body`] delegates here).
pub fn ingest_body(id: u64, stream: &str, slices: &[(u64, ObservedTensor)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ingest {id} {} {}",
        encode_stream_id(stream),
        slices.len()
    );
    for (seq, slice) in slices {
        let _ = writeln!(out, "seq {seq}");
        wire::push_observed(&mut out, slice);
    }
    out
}

/// Upper bound (in bytes) of one slice's encoded ingest block: the
/// `seq` line, the shape line, 17 bytes per hex float, one bit per
/// mask entry, and label overhead. Used to chunk client batches under
/// the frame bound without serializing twice.
pub fn ingest_slice_wire_bound(slice: &ObservedTensor) -> usize {
    let elems = slice.shape().len();
    let dims = slice.shape().order();
    32 + 8 + 21 * dims + 17 * elems + elems + 16
}

fn finish_single_line(rest: &str, req: Request) -> Result<Request, WireError> {
    if rest.is_empty() {
        Ok(req)
    } else {
        Err(WireError::new("unexpected payload after request line"))
    }
}

/// The status line of a server reply.
#[derive(Debug)]
pub enum ReplyHead {
    /// `ok <req-id>`; the payload follows.
    Ok(u64),
    /// `err <req-id> <fleet-error…>`.
    Err(u64, FleetError),
}

/// Builds an `ok` reply body from a payload writer.
pub fn ok_body(id: u64, write_payload: impl FnOnce(&mut String)) -> String {
    let mut out = format!("ok {id}\n");
    write_payload(&mut out);
    out
}

/// Builds an `err` reply body.
pub fn err_body(id: u64, e: &FleetError) -> String {
    format!("err {id} {}\n", e.to_wire())
}

/// Splits a reply body into its head and the payload remainder.
pub fn split_reply(body: &str) -> Result<(ReplyHead, &str), WireError> {
    let (head, rest) = match body.find('\n') {
        Some(i) => (&body[..i], &body[i + 1..]),
        None => (body, ""),
    };
    if let Some(rest_head) = head.strip_prefix("ok ") {
        let id = rest_head
            .parse()
            .map_err(|_| WireError::new(format!("bad reply id in `{head}`")))?;
        return Ok((ReplyHead::Ok(id), rest));
    }
    if let Some(rest_head) = head.strip_prefix("err ") {
        let (id_tok, err_line) = rest_head
            .split_once(' ')
            .ok_or_else(|| WireError::new(format!("bad err reply `{head}`")))?;
        let id = id_tok
            .parse()
            .map_err(|_| WireError::new(format!("bad reply id in `{head}`")))?;
        return Ok((ReplyHead::Err(id, FleetError::from_wire(err_line)?), rest));
    }
    Err(WireError::new(format!("bad reply head `{head}`")))
}

/// The shard-ownership table a server hands its clients at handshake:
/// stream route → endpoint.
///
/// Today every shard maps to the one serving endpoint (single-node), but
/// the table is what a multi-process deployment changes: give shards
/// different endpoints and [`ShardMap::endpoint_of`] becomes the
/// client-side router — the stable FNV stream route
/// ([`sofia_fleet::shard_of`]) already agrees across processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    endpoints: Vec<String>,
}

impl ShardMap {
    /// A single-node map: all `shards` routes point at `endpoint`.
    pub fn single_node(endpoint: impl Into<String>, shards: usize) -> ShardMap {
        assert!(shards > 0, "a shard map needs at least one shard");
        let endpoint = endpoint.into();
        ShardMap {
            endpoints: vec![endpoint; shards],
        }
    }

    /// A map with one endpoint per shard (the multi-node seam).
    pub fn from_endpoints(endpoints: Vec<String>) -> ShardMap {
        assert!(
            !endpoints.is_empty(),
            "a shard map needs at least one shard"
        );
        ShardMap { endpoints }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.endpoints.len()
    }

    /// Endpoint serving shard `i`.
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// The shard a stream id routes to (same stable hash the engine
    /// uses).
    pub fn shard_of(&self, stream_id: &str) -> usize {
        shard_of(stream_id, self.endpoints.len())
    }

    /// The endpoint serving a stream id.
    pub fn endpoint_of(&self, stream_id: &str) -> &str {
        &self.endpoints[self.shard_of(stream_id)]
    }

    /// Appends the map's wire form (`shardmap <n>` + one `endpoint`
    /// line per shard).
    pub fn push_wire(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "shardmap {}", self.endpoints.len());
        for (i, ep) in self.endpoints.iter().enumerate() {
            let _ = writeln!(out, "endpoint {i} {}", encode_stream_id(ep));
        }
    }

    /// Parses the block written by [`ShardMap::push_wire`].
    pub fn parse(cur: &mut LineCursor<'_>) -> Result<ShardMap, WireError> {
        let head = cur.next("shardmap header")?;
        let n: usize = head
            .strip_prefix("shardmap ")
            .and_then(|d| d.parse().ok())
            .filter(|&n| n > 0 && n <= 1 << 20)
            .ok_or_else(|| WireError::new(format!("bad shardmap header `{head}`")))?;
        let mut endpoints = Vec::with_capacity(n);
        for i in 0..n {
            let line = cur.next("shardmap endpoint")?;
            let rest = line
                .strip_prefix(&format!("endpoint {i} "))
                .ok_or_else(|| WireError::new(format!("bad endpoint line `{line}`")))?;
            endpoints.push(
                decode_stream_id(rest).ok_or_else(|| WireError::new("undecodable endpoint"))?,
            );
        }
        Ok(ShardMap { endpoints })
    }
}

/// Appends fleet-wide statistics (`shards <n>` + three lines per shard).
pub fn push_fleet_stats(out: &mut String, stats: &FleetStats) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "shards {}", stats.shards.len());
    for s in &stats.shards {
        let _ = writeln!(
            out,
            "shard {} {} {} {} {} {} {} {} {} {} {} {}",
            s.shard,
            s.streams,
            s.evicted,
            s.steps,
            s.queue_depth,
            s.batches,
            s.max_batch,
            s.dropped,
            s.evictions,
            s.restores,
            s.query_batches,
            s.query_queue_depth
        );
        let _ = writeln!(
            out,
            "queries {} {} {} {}",
            s.queries.latest, s.queries.forecast, s.queries.outlier_mask, s.queries.stream_stats
        );
        match s.step_latency_ewma_us {
            Some(l) => {
                let _ = writeln!(out, "latency {:016x}", l.to_bits());
            }
            None => out.push_str("latency none\n"),
        }
    }
}

/// Parses the block written by [`push_fleet_stats`].
pub fn parse_fleet_stats(cur: &mut LineCursor<'_>) -> Result<FleetStats, WireError> {
    let head = cur.next("stats header")?;
    let n: usize = head
        .strip_prefix("shards ")
        .and_then(|d| d.parse().ok())
        .filter(|&n| n <= 1 << 20)
        .ok_or_else(|| WireError::new(format!("bad stats header `{head}`")))?;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        let line = cur.next("shard stats")?;
        let nums: Vec<&str> = line
            .strip_prefix("shard ")
            .ok_or_else(|| WireError::new(format!("bad shard line `{line}`")))?
            .split_whitespace()
            .collect();
        if nums.len() != 12 {
            return Err(WireError::new(format!(
                "shard line carries {} fields, expected 12",
                nums.len()
            )));
        }
        let int = |i: usize| -> Result<u64, WireError> {
            nums[i]
                .parse()
                .map_err(|_| WireError::new(format!("bad shard field `{}`", nums[i])))
        };
        let qline = cur.next("shard query counters")?;
        let qnums: Vec<&str> = qline
            .strip_prefix("queries ")
            .ok_or_else(|| WireError::new(format!("bad queries line `{qline}`")))?
            .split_whitespace()
            .collect();
        if qnums.len() != 4 {
            return Err(WireError::new("queries line needs 4 counters"));
        }
        let qint = |i: usize| -> Result<u64, WireError> {
            qnums[i]
                .parse()
                .map_err(|_| WireError::new(format!("bad query counter `{}`", qnums[i])))
        };
        let lline = cur.next("shard latency")?;
        let step_latency_ewma_us = match lline
            .strip_prefix("latency ")
            .ok_or_else(|| WireError::new(format!("bad latency line `{lline}`")))?
        {
            "none" => None,
            hex => Some(f64::from_bits(
                u64::from_str_radix(hex, 16)
                    .map_err(|_| WireError::new(format!("bad latency `{hex}`")))?,
            )),
        };
        shards.push(ShardStats {
            shard: int(0)? as usize,
            streams: int(1)? as usize,
            evicted: int(2)? as usize,
            steps: int(3)?,
            queue_depth: int(4)? as usize,
            batches: int(5)?,
            max_batch: int(6)? as usize,
            dropped: int(7)?,
            evictions: int(8)?,
            restores: int(9)?,
            queries: QueryCounters {
                latest: qint(0)?,
                forecast: qint(1)?,
                outlier_mask: qint(2)?,
                stream_stats: qint(3)?,
            },
            query_batches: int(10)?,
            query_queue_depth: int(11)? as usize,
            step_latency_ewma_us,
        });
    }
    Ok(FleetStats { shards })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_tensor::{DenseTensor, Mask, Shape};

    fn slice(v: f64) -> ObservedTensor {
        ObservedTensor::new(
            DenseTensor::from_vec(Shape::new(&[2, 2]), vec![v, -v, 0.25 * v, f64::INFINITY]),
            Mask::from_vec(Shape::new(&[2, 2]), vec![true, false, true, true]),
        )
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello world\nsecond line").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).unwrap().as_deref(),
            Some("hello world\nsecond line")
        );
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).unwrap().as_deref(),
            Some("")
        );
        assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn frames_reject_oversized_truncated_and_garbage() {
        // Oversized: announced length above the receiver bound.
        let mut r = io::BufReader::new(&b"#100\nxxxx"[..]);
        assert!(matches!(
            read_frame(&mut r, 10),
            Err(FrameError::Oversized { len: 100, max: 10 })
        ));
        // Truncated body.
        let mut r = io::BufReader::new(&b"#10\nshort"[..]);
        assert!(matches!(
            read_frame(&mut r, 100),
            Err(FrameError::Truncated)
        ));
        // Truncated header.
        let mut r = io::BufReader::new(&b"#1"[..]);
        assert!(matches!(
            read_frame(&mut r, 100),
            Err(FrameError::Truncated)
        ));
        // Garbage headers.
        for bad in [
            "nope\n",
            "#\n",
            "#-3\n",
            "#12x\n",
            "#99999999999999999999\n",
        ] {
            let mut r = io::BufReader::new(bad.as_bytes());
            assert!(
                matches!(read_frame(&mut r, 100), Err(FrameError::BadHeader(_))),
                "{bad:?}"
            );
        }
        // Non-UTF-8 body.
        let mut r = io::BufReader::new(&b"#2\n\xff\xfe"[..]);
        assert!(matches!(read_frame(&mut r, 100), Err(FrameError::NotUtf8)));
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Hello {
                client: "bench client/1".into(),
            },
            Request::Query {
                id: 7,
                stream: "sensor net/α".into(),
                query: Query::Forecast { horizon: 12 },
            },
            Request::QueryBatch {
                id: 8,
                items: vec![
                    ("a".into(), Query::Latest),
                    ("b c".into(), Query::StreamStats),
                    ("d".into(), Query::OutlierMask),
                ],
            },
            Request::Register {
                id: 9,
                stream: "new stream".into(),
                envelope: "sofia-checkpoint v2\nmodel demo\nsteps 3\npayload line\n".into(),
            },
            Request::Ingest {
                id: 10,
                stream: "s".into(),
                slices: vec![(41, slice(1.5)), (42, slice(-2.0))],
            },
            Request::Flush { id: 11 },
            Request::Stats { id: 12 },
            Request::Shutdown { id: 13 },
        ];
        for req in requests {
            let body = req.to_body();
            let back = Request::from_body(&body).unwrap_or_else(|e| panic!("{e}:\n{body}"));
            match (&req, &back) {
                // ObservedTensor has no PartialEq; compare field-wise.
                (
                    Request::Ingest {
                        id: a,
                        stream: sa,
                        slices: xa,
                    },
                    Request::Ingest {
                        id: b,
                        stream: sb,
                        slices: xb,
                    },
                ) => {
                    assert_eq!((a, sa), (b, sb));
                    assert_eq!(xa.len(), xb.len());
                    for ((qa, ta), (qb, tb)) in xa.iter().zip(xb) {
                        assert_eq!(qa, qb);
                        assert_eq!(ta.values().data(), tb.values().data());
                        assert_eq!(ta.count_observed(), tb.count_observed());
                    }
                }
                (a, b) => assert_eq!(a, b, "body:\n{body}"),
            }
            assert_eq!(req.id(), back.id());
        }
    }

    #[test]
    fn requests_reject_malformed() {
        let cases = [
            "",
            "warp 1",
            "query",
            "query x s latest",
            "query 1",
            "query 1 s",
            "query 1 s bogus",
            "query 1 %zz latest",
            "query 1 s latest\ntrailing payload",
            "batch 1 2\na latest",
            "batch 1 2\na latest\nb forecast 1\nextra",
            "batch 1 999999999",
            "batch 1 1\nmissing-query-token",
            "ingest 1 s 1\nseq nope\nshape 1\ndata 0\nbits 1",
            "ingest 1 s 1\nseq 5\nshape 2\ndata 0000000000000000\nbits 10",
            "ingest 1 s 2\nseq 5\nshape 1\ndata 0000000000000000\nbits 1",
            "flush",
            "flush x",
            "flush 1 2",
            "stats 1\nstray",
            "hello %f",
        ];
        for case in cases {
            assert!(Request::from_body(case).is_err(), "should reject:\n{case}");
        }
    }

    #[test]
    fn replies_round_trip() {
        let ok = ok_body(42, |out| out.push_str("payload line\n"));
        let (head, rest) = split_reply(&ok).unwrap();
        assert!(matches!(head, ReplyHead::Ok(42)));
        assert_eq!(rest, "payload line\n");

        let err = err_body(7, &FleetError::UnknownStream("ghost".into()));
        let (head, rest) = split_reply(&err).unwrap();
        match head {
            ReplyHead::Err(7, FleetError::UnknownStream(id)) => assert_eq!(id, "ghost"),
            other => panic!("{other:?}"),
        }
        assert_eq!(rest, "");

        for bad in ["", "ok", "ok x", "err 1", "err x shutting-down", "yo 1"] {
            assert!(split_reply(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn shard_map_routes_and_round_trips() {
        let map = ShardMap::single_node("127.0.0.1:7000", 4);
        assert_eq!(map.shards(), 4);
        assert_eq!(map.endpoint_of("any-stream"), "127.0.0.1:7000");
        assert_eq!(map.shard_of("s"), shard_of("s", 4));

        let multi = ShardMap::from_endpoints(vec!["h0:1".into(), "h1:2".into()]);
        let mut out = String::new();
        multi.push_wire(&mut out);
        let mut cur = LineCursor::new(&out);
        let back = ShardMap::parse(&mut cur).unwrap();
        cur.finish().unwrap();
        assert_eq!(back, multi);
        // Routing through the parsed map agrees with the engine hash.
        for id in ["a", "b", "stream/with spaces"] {
            assert_eq!(back.endpoint_of(id), multi.endpoint_of(id));
        }

        for bad in [
            "shardmap 0",
            "shardmap x",
            "shardmap 2\nendpoint 0 a",
            "shardmap 1\nendpoint 1 a",
            "shardmap 1\nendpoint 0 %zz",
        ] {
            let mut cur = LineCursor::new(bad);
            assert!(ShardMap::parse(&mut cur).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn fleet_stats_round_trip() {
        let stats = FleetStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    streams: 3,
                    evicted: 1,
                    steps: 100,
                    queue_depth: 2,
                    batches: 40,
                    max_batch: 9,
                    dropped: 1,
                    evictions: 2,
                    restores: 1,
                    queries: QueryCounters {
                        latest: 5,
                        forecast: 6,
                        outlier_mask: 7,
                        stream_stats: 8,
                    },
                    query_batches: 11,
                    query_queue_depth: 1,
                    step_latency_ewma_us: Some(321.125),
                },
                ShardStats {
                    shard: 1,
                    streams: 0,
                    evicted: 0,
                    steps: 0,
                    queue_depth: 0,
                    batches: 0,
                    max_batch: 0,
                    dropped: 0,
                    evictions: 0,
                    restores: 0,
                    queries: QueryCounters::default(),
                    query_batches: 0,
                    query_queue_depth: 0,
                    step_latency_ewma_us: None,
                },
            ],
        };
        let mut out = String::new();
        push_fleet_stats(&mut out, &stats);
        let mut cur = LineCursor::new(&out);
        let back = parse_fleet_stats(&mut cur).unwrap();
        cur.finish().unwrap();
        assert_eq!(back.shards.len(), 2);
        assert_eq!(back.steps(), 100);
        assert_eq!(back.queries().total(), 26);
        assert_eq!(
            back.shards[0].step_latency_ewma_us.map(f64::to_bits),
            Some(321.125f64.to_bits())
        );
        assert_eq!(back.shards[1].step_latency_ewma_us, None);
    }
}
