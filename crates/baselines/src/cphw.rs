//! CPHW (Dunlavy, Kolda & Acar, "Temporal link prediction using matrix and
//! tensor factorizations", TKDD 2011).
//!
//! A *batch* forecasting pipeline: CP-factorize the entire observed history
//! (vanilla ALS), fit an additive Holt-Winters model to each column of the
//! temporal factor, and forecast future slices by extrapolating the
//! temporal vector (the paper's Eq. (28) applied with batch factors).
//! Being batch, it must be re-run from scratch as the stream grows, and it
//! has no outlier handling — the two weaknesses the SOFIA comparison
//! (Fig. 6) exercises.

use crate::vanilla_als::VanillaAls;
use sofia_core::hw::HwBank;
use sofia_tensor::{kruskal, DenseTensor, Matrix, ObservedTensor};
use sofia_timeseries::init::TooShort;

/// A fitted CPHW model.
#[derive(Debug, Clone)]
pub struct CpHw {
    /// Non-temporal factor matrices.
    factors: Vec<Matrix>,
    /// Per-component Holt-Winters models fitted on the temporal factor.
    hw: HwBank,
}

impl CpHw {
    /// Fits CPHW on a fully collected history of slices.
    ///
    /// `als_iters` caps the batch ALS sweeps; `period` is the seasonal
    /// period handed to Holt-Winters.
    pub fn fit(
        history: &[ObservedTensor],
        rank: usize,
        period: usize,
        als_iters: usize,
        seed: u64,
    ) -> Result<Self, TooShort> {
        assert!(!history.is_empty(), "history must be non-empty");
        let slices: Vec<&ObservedTensor> = history.iter().collect();
        let batch = ObservedTensor::stack(&slices);
        let fit = VanillaAls::fit(&batch, rank, als_iters, seed);
        let mut factors = fit.factors;
        let temporal = factors.pop().expect("at least two modes");
        let hw = HwBank::fit(&temporal, period)?;
        Ok(Self { factors, hw })
    }

    /// Forecasts the slice `h` steps past the end of the fitted history.
    pub fn forecast(&self, h: usize) -> DenseTensor {
        let u = self.hw.forecast(h);
        let refs: Vec<&Matrix> = self.factors.iter().collect();
        kruskal::kruskal_slice(&refs, &u)
    }

    /// The non-temporal factors.
    pub fn factors(&self) -> &[Matrix] {
        &self.factors
    }

    /// The fitted Holt-Winters bank.
    pub fn hw(&self) -> &HwBank {
        &self.hw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sofia_tensor::random::random_factors;

    fn seasonal_slice(truth: &[Matrix], t: usize, m: usize) -> DenseTensor {
        let phase = 2.0 * std::f64::consts::PI * (t % m) as f64 / m as f64;
        let w = vec![3.0 + 1.2 * phase.sin(), -1.5 + 0.8 * phase.cos()];
        let refs: Vec<&Matrix> = truth.iter().collect();
        kruskal::kruskal_slice(&refs, &w)
    }

    #[test]
    fn forecasts_clean_seasonal_history() {
        let m = 8;
        let mut rng = SmallRng::seed_from_u64(41);
        let truth = random_factors(&[5, 4], 2, &mut rng);
        let history: Vec<ObservedTensor> = (0..4 * m)
            .map(|t| ObservedTensor::fully_observed(seasonal_slice(&truth, t, m)))
            .collect();
        let model = CpHw::fit(&history, 2, m, 300, 7).unwrap();
        let t_end = 4 * m;
        let mut total = 0.0;
        for h in 1..=m {
            let fc = model.forecast(h);
            let truth_slice = seasonal_slice(&truth, t_end + h - 1, m);
            total += (&fc - &truth_slice).frobenius_norm() / truth_slice.frobenius_norm();
        }
        let avg = total / m as f64;
        assert!(avg < 0.15, "forecast avg error {avg}");
    }

    #[test]
    fn forecast_hurt_by_outliers() {
        let m = 6;
        let mut rng = SmallRng::seed_from_u64(42);
        let truth = random_factors(&[5, 5], 2, &mut rng);
        let clean: Vec<ObservedTensor> = (0..4 * m)
            .map(|t| ObservedTensor::fully_observed(seasonal_slice(&truth, t, m)))
            .collect();
        let mut rng2 = SmallRng::seed_from_u64(43);
        let dirty: Vec<ObservedTensor> = (0..4 * m)
            .map(|t| {
                let mut vals = seasonal_slice(&truth, t, m);
                for off in 0..vals.len() {
                    if rng2.gen::<f64>() < 0.2 {
                        vals.set_flat(off, 40.0);
                    }
                }
                ObservedTensor::fully_observed(vals)
            })
            .collect();
        let err = |hist: &[ObservedTensor]| -> f64 {
            let model = CpHw::fit(hist, 2, m, 200, 7).unwrap();
            (1..=m)
                .map(|h| {
                    let fc = model.forecast(h);
                    let ts = seasonal_slice(&truth, 4 * m + h - 1, m);
                    (&fc - &ts).frobenius_norm() / ts.frobenius_norm()
                })
                .sum::<f64>()
                / m as f64
        };
        let clean_err = err(&clean);
        let dirty_err = err(&dirty);
        assert!(
            dirty_err > 3.0 * clean_err,
            "outliers should wreck CPHW: clean {clean_err}, dirty {dirty_err}"
        );
    }

    #[test]
    fn works_with_missing_history() {
        // CPHW's CP step handles missing entries (CP-WOPT-style), even
        // though the original pipeline assumed complete data.
        let m = 6;
        let mut rng = SmallRng::seed_from_u64(44);
        let truth = random_factors(&[5, 5], 2, &mut rng);
        let history: Vec<ObservedTensor> = (0..4 * m)
            .map(|t| {
                let vals = seasonal_slice(&truth, t, m);
                let mask = sofia_tensor::Mask::random(vals.shape().clone(), 0.2, &mut rng);
                ObservedTensor::new(vals, mask)
            })
            .collect();
        let model = CpHw::fit(&history, 2, m, 300, 3).unwrap();
        let fc = model.forecast(1);
        let truth_slice = seasonal_slice(&truth, 4 * m, m);
        let rel = (&fc - &truth_slice).frobenius_norm() / truth_slice.frobenius_norm();
        assert!(rel < 0.3, "missing-history forecast rel {rel}");
    }

    #[test]
    fn short_history_errors() {
        let slices = vec![ObservedTensor::fully_observed(DenseTensor::zeros(
            sofia_tensor::Shape::new(&[2, 2]),
        ))];
        assert!(CpHw::fit(&slices, 1, 4, 10, 1).is_err());
    }
}
