//! The `cluster` subcommand: launch N `serve` **processes** from one
//! spec, then prove multi-process sharding end to end — a stream
//! registered on its owning node is unreachable on any other node, a
//! migration ships its checkpoint envelope over the wire and flips the
//! routing entry, and the whole cluster shuts down cleanly.
//!
//! ```text
//! sofia-cli cluster [--nodes 2] [--base-port 7421] [--shards 2]
//!                   [--checkpoint-dir DIR] [--rebalance]
//! ```
//!
//! With `--rebalance` the smoke grows a fault-and-recovery chapter: one
//! node is SIGKILLed and restarted with `--recover`, a deliberately
//! skewed stream population makes another node hot, and
//! [`ClusterClient::rebalance`] is asserted to move at least one route
//! slot off it — after which **every** stream must still answer through
//! the router.
//!
//! Each node is a real OS process (`sofia-cli serve --empty true
//! --cluster <all endpoints>`) with its own fleet, its own checkpoint
//! directory (`<dir>/node-<i>`), and the full spec map in its
//! handshake; this command is the single-writer coordinator driving
//! them through a [`ClusterClient`]. Exits nonzero if any step — or the
//! bit-exactness of the migrated forecast — fails, so CI can run it as
//! the cluster smoke test.

use crate::commands::CmdResult;
use sofia_baselines::Smf;
use sofia_datagen::seasonal::SeasonalStream;
use sofia_datagen::stream::TensorStream;
use sofia_fleet::{FleetError, ModelHandle, Query};
use sofia_net::{Client, ClientError, ClusterClient};
use sofia_tensor::ObservedTensor;
use std::error::Error;
use std::path::PathBuf;
use std::process::Child;
use std::time::{Duration, Instant};

/// Parameters of one `cluster` invocation.
pub struct ClusterOpts {
    /// Number of `serve` processes to launch.
    pub nodes: usize,
    /// Node `i` binds `127.0.0.1:(base_port + i)`.
    pub base_port: u16,
    /// Route slots per node in the spec map (also each node's internal
    /// shard count).
    pub shards: usize,
    /// Base checkpoint directory (`node-<i>` per node); a temp
    /// directory when omitted.
    pub checkpoint_dir: Option<PathBuf>,
    /// Run the kill → restart → skew → rebalance chapter too.
    pub rebalance: bool,
}

impl Default for ClusterOpts {
    fn default() -> Self {
        ClusterOpts {
            nodes: 2,
            base_port: 7421,
            shards: 2,
            checkpoint_dir: None,
            rebalance: false,
        }
    }
}

/// Kills every `serve` process still in `children` when dropped, so no
/// error path leaves orphan nodes holding their ports. Reaped children
/// are popped out as they exit cleanly; an empty guard drops as a
/// no-op.
struct NodeGuard {
    children: Vec<(String, Child)>,
}

impl NodeGuard {
    /// Waits for every node to exit and checks the exit codes (the
    /// graceful path after a cluster-wide shutdown frame). A node that
    /// exits nonzero aborts the join — the guard's drop then kills the
    /// not-yet-reaped remainder instead of orphaning it.
    fn join(mut self) -> CmdResult {
        while let Some((endpoint, mut child)) = self.children.pop() {
            let status = child.wait()?;
            if !status.success() {
                return Err(format!("node {endpoint} exited with {status}").into());
            }
            println!("cluster: node {endpoint} exited cleanly");
        }
        Ok(())
    }
}

impl Drop for NodeGuard {
    fn drop(&mut self) {
        for (endpoint, child) in &mut self.children {
            eprintln!("cluster: killing node {endpoint}");
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Polls an endpoint until its handshake answers (the child binds and
/// warms asynchronously). A child that already exited — e.g. its port
/// was taken — fails fast with the real exit status instead of
/// spinning out the timeout on connection errors.
fn await_node(endpoint: &str, child: &mut Child, timeout: Duration) -> CmdResult {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait()? {
            return Err(format!("node {endpoint} exited early with {status}").into());
        }
        match Client::connect_as(endpoint, "cluster-probe") {
            Ok(_) => return Ok(()),
            Err(_) if start.elapsed() < timeout => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(format!("node {endpoint} never came up: {e}").into()),
        }
    }
}

/// One forecast through the router, as raw bit patterns — both sides
/// of the pre/post-migration comparison must use the identical
/// extraction for "bit-exact" to mean anything.
fn forecast_bits(router: &mut ClusterClient, stream: &str) -> Result<Vec<u64>, Box<dyn Error>> {
    Ok(router
        .query(stream, Query::Forecast { horizon: 4 })?
        .expect_forecast()
        .ok_or("SMF forecasts")?
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect())
}

/// Entry point of `sofia-cli cluster`.
pub fn cluster(opts: &ClusterOpts) -> CmdResult {
    if opts.nodes < 2 {
        return Err("a cluster needs at least 2 nodes (use `serve` for one)".into());
    }
    if opts.shards == 0 {
        return Err("shards must be positive".into());
    }
    // The ports are base_port..base_port+nodes; reject a spec that
    // walks off either end of the port space (port 0 would make node 0
    // bind an ephemeral port the spec map doesn't name).
    if opts.base_port == 0 {
        return Err("--base-port must be positive (port 0 binds an ephemeral port)".into());
    }
    if opts.base_port as u64 + opts.nodes as u64 - 1 > u16::MAX as u64 {
        return Err(format!(
            "--base-port {} with --nodes {} exceeds port {}",
            opts.base_port,
            opts.nodes,
            u16::MAX
        )
        .into());
    }
    let endpoints: Vec<String> = (0..opts.nodes)
        .map(|i| format!("127.0.0.1:{}", opts.base_port as u64 + i as u64))
        .collect();
    let base_dir = opts.checkpoint_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("sofia-cluster-cli-{}", std::process::id()))
    });

    // --- Launch: one real `serve` process per node, each told the full
    // spec so every handshake advertises the same ownership map.
    let exe = std::env::current_exe()?;
    let spec = endpoints.join(",");
    let mut guard = NodeGuard {
        children: Vec::new(),
    };
    for (i, endpoint) in endpoints.iter().enumerate() {
        let dir = base_dir.join(format!("node-{i}"));
        let child = std::process::Command::new(&exe)
            .args([
                "serve",
                "--bind",
                endpoint,
                "--empty",
                "true",
                "--shards",
                &opts.shards.to_string(),
                "--cluster",
                &spec,
                "--checkpoint-dir",
                dir.to_str().ok_or("unrepresentable checkpoint path")?,
                "--checkpoint-every",
                "2",
            ])
            .spawn()?;
        guard.children.push((endpoint.clone(), child));
    }
    for (endpoint, child) in &mut guard.children {
        let endpoint = endpoint.clone();
        await_node(&endpoint, child, Duration::from_secs(30))?;
    }
    println!(
        "cluster: {} nodes up on {spec} ({} route slots)",
        opts.nodes,
        opts.nodes * opts.shards
    );

    // --- Bootstrap the router from one seed member's handshake.
    let mut router = ClusterClient::connect_as(endpoints[0].clone(), "sofia-cli-cluster")?;
    if router.map().distinct_endpoints().len() != opts.nodes {
        return Err("seed handshake did not advertise the full cluster map".into());
    }

    // --- A deterministic demo stream (SMF: cheap, durable, forecasts)
    // on whichever node its id hashes to.
    let stream_id = "cluster-demo";
    let owner = router.endpoint_of(stream_id).to_string();
    let other = endpoints
        .iter()
        .find(|ep| **ep != owner)
        .expect("at least 2 nodes")
        .clone();
    let period = 4;
    let source = SeasonalStream::paper_fig2(&[6, 5], 2, period, 2021);
    let startup: Vec<ObservedTensor> = (0..3 * period)
        .map(|t| ObservedTensor::fully_observed(source.clean_slice(t)))
        .collect();
    let model = ModelHandle::durable(Smf::init(&startup, 2, period, 0.1, 2021));
    router.register(stream_id, &model)?;
    println!("cluster: registered `{stream_id}` on its owner {owner}");

    // --- Sharding is real: the stream exists on exactly one process.
    let mut direct = Client::connect_as(&other, "cluster-direct-probe")?;
    match direct.query(stream_id, Query::StreamStats) {
        Err(ClientError::Fleet(FleetError::UnknownStream(_))) => {
            println!("cluster: `{stream_id}` is (correctly) unknown on {other}");
        }
        other_result => {
            return Err(
                format!("`{stream_id}` should be unknown on {other}, got {other_result:?}").into(),
            )
        }
    }

    // --- Traffic, then a forecast to compare across the migration.
    let slices: Vec<ObservedTensor> = (3 * period..3 * period + 8)
        .map(|t| ObservedTensor::fully_observed(source.clean_slice(t)))
        .collect();
    let ingested = slices.len();
    router.ingest_blocking(stream_id, slices)?;
    router.flush()?;
    let before = forecast_bits(&mut router, stream_id)?;

    // --- Migrate: envelope over the wire, map entry flipped, old copy
    // unloaded (and its checkpoint file deleted on the old owner).
    router.migrate(stream_id, &other)?;
    println!("cluster: migrated `{stream_id}` {owner} -> {other}");
    let after = forecast_bits(&mut router, stream_id)?;
    if before != after {
        return Err("post-migration forecast diverged from pre-migration bits".into());
    }
    println!(
        "cluster: post-migration forecast is bit-exact ({} floats)",
        after.len()
    );
    let mut direct_old = Client::connect_as(&owner, "cluster-direct-probe")?;
    match direct_old.query(stream_id, Query::StreamStats) {
        Err(ClientError::Fleet(FleetError::UnknownStream(_))) => {
            println!("cluster: old owner {owner} no longer serves `{stream_id}`");
        }
        other_result => {
            return Err(
                format!("`{stream_id}` should be gone from {owner}, got {other_result:?}").into(),
            )
        }
    }
    let steps = router
        .query(stream_id, Query::StreamStats)?
        .expect_stream_stats()
        .steps;
    if steps != ingested as u64 {
        return Err(format!("migrated stream reports {steps} steps, expected {ingested}").into());
    }

    let merged = router.stats()?;
    println!(
        "cluster: merged stats — {} resident streams over {} shards on {} nodes, {} steps",
        merged.streams(),
        merged.shards.len(),
        opts.nodes,
        merged.steps()
    );

    // --- Optional autonomy chapter: kill a node, recover it, skew the
    // load, and prove the rebalancer moves slots while every stream
    // keeps answering.
    if opts.rebalance {
        rebalance_phase(
            &mut router,
            &endpoints,
            &mut guard,
            &base_dir,
            opts,
            stream_id,
        )?;
    }

    // --- Cluster-wide graceful shutdown, then reap the processes.
    let stopped = router.shutdown_all()?;
    println!("cluster: {stopped} nodes acknowledged shutdown");
    guard.join()?;
    if opts.checkpoint_dir.is_none() {
        let _ = std::fs::remove_dir_all(&base_dir);
    }
    println!("cluster: register -> shard-miss -> migrate -> bit-exact forecast -> clean shutdown all proven");
    Ok(())
}

/// The `--rebalance` chapter: SIGKILL one node and restart it with
/// `--recover`, register a deliberately skewed population on the first
/// node, then assert [`ClusterClient::rebalance`] moves at least one
/// route slot off it and that **every** stream still answers through
/// the router afterwards.
fn rebalance_phase(
    router: &mut ClusterClient,
    endpoints: &[String],
    guard: &mut NodeGuard,
    base_dir: &std::path::Path,
    opts: &ClusterOpts,
    demo_stream: &str,
) -> CmdResult {
    // --- Kill the last node hard (no drain, no final checkpoints) and
    // bring it back from its checkpoint directory — the restart path a
    // real deployment takes after a crash.
    let victim = endpoints.last().expect("at least 2 nodes").clone();
    let pos = guard
        .children
        .iter()
        .position(|(ep, _)| *ep == victim)
        .ok_or("victim process not found")?;
    let (_, mut child) = guard.children.remove(pos);
    child.kill()?;
    child.wait()?;
    println!("cluster: killed node {victim} (SIGKILL)");
    let node_idx = endpoints.len() - 1;
    let dir = base_dir.join(format!("node-{node_idx}"));
    let exe = std::env::current_exe()?;
    let spec = endpoints.join(",");
    let child = std::process::Command::new(&exe)
        .args([
            "serve",
            "--bind",
            &victim,
            "--recover",
            "true",
            "--shards",
            &opts.shards.to_string(),
            "--cluster",
            &spec,
            "--checkpoint-dir",
            dir.to_str().ok_or("unrepresentable checkpoint path")?,
            "--checkpoint-every",
            "2",
        ])
        .spawn()?;
    guard.children.push((victim.clone(), child));
    {
        let (ep, child) = guard.children.last_mut().expect("just pushed");
        let ep = ep.clone();
        await_node(&ep, child, Duration::from_secs(30))?;
    }
    router.disconnect(&victim);
    println!("cluster: node {victim} restarted with --recover");

    // --- Skew: a population of streams whose ids all hash to slots the
    // first node owns, fed enough traffic to make it the hot node.
    let hot = endpoints[0].clone();
    let period = 4;
    let mut hot_streams: Vec<String> = Vec::new();
    for i in 0.. {
        if hot_streams.len() == 6 {
            break;
        }
        if i == 10_000 {
            return Err("could not find 6 stream ids hashing to the first node".into());
        }
        let id = format!("hot-{i:03}");
        if router.endpoint_of(&id) == hot {
            hot_streams.push(id);
        }
    }
    for (i, stream) in hot_streams.iter().enumerate() {
        let source = SeasonalStream::paper_fig2(&[6, 5], 2, period, 3000 + i as u64);
        let startup: Vec<ObservedTensor> = (0..3 * period)
            .map(|t| ObservedTensor::fully_observed(source.clean_slice(t)))
            .collect();
        let model = ModelHandle::durable(Smf::init(&startup, 2, period, 0.1, 3000 + i as u64));
        router.register(stream, &model)?;
        let slices: Vec<ObservedTensor> = (3 * period..3 * period + 16)
            .map(|t| ObservedTensor::fully_observed(source.clean_slice(t)))
            .collect();
        router.ingest_blocking(stream, slices)?;
    }
    router.flush()?;
    println!(
        "cluster: skewed the load — {} streams ({} steps each) on {hot}",
        hot_streams.len(),
        16
    );

    // --- Rebalance and prove it moved something.
    let report = router.rebalance()?;
    for (ep, load) in &report.endpoint_load {
        let p99 = report
            .settle_p99_us
            .iter()
            .find(|(e, _)| e == ep)
            .and_then(|(_, p)| *p)
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "-".to_string());
        println!("cluster:   load {ep}: {load:.0} (settle p99 {p99} us)");
    }
    for m in &report.moves {
        println!(
            "cluster:   moved slot {} ({} streams, load {:.0}) {} -> {}",
            m.slot, m.streams, m.load, m.from, m.to
        );
    }
    println!(
        "cluster: rebalance skew {:.2} -> {:.2} in {} moves (epoch {})",
        report.skew_before,
        report.skew_after,
        report.moves.len(),
        router.map().epoch()
    );
    if report.moves.is_empty() {
        return Err("rebalance moved no slots off the hot node".into());
    }

    // --- Every stream — migrated demo, skew population — still
    // answers through the router.
    let mut all: Vec<&str> = vec![demo_stream];
    all.extend(hot_streams.iter().map(String::as_str));
    for stream in all {
        let steps = router
            .query(stream, Query::StreamStats)?
            .expect_stream_stats()
            .steps;
        if steps == 0 {
            return Err(format!("stream `{stream}` answered with zero steps").into());
        }
    }
    println!(
        "cluster: all {} streams answer after kill + recover + rebalance",
        1 + hot_streams.len()
    );
    Ok(())
}
