//! Figure 6 — forecasting accuracy (AFE).
//!
//! Each algorithm consumes the stream up to `T − t_f` and forecasts the
//! following `t_f` subtensors. Outliers (20%, magnitude ±5·max) are
//! injected everywhere; SOFIA is additionally evaluated at 0/30/50/70%
//! missing entries, while SMF and CPHW — which cannot handle missing
//! data — see fully observed streams (the paper's protocol).

use sofia_baselines::{CpHw, Smf};
use sofia_bench::args::ExpArgs;
use sofia_bench::suite::sofia_config;
use sofia_core::model::Sofia;
use sofia_core::traits::StreamingFactorizer;
use sofia_datagen::corrupt::{CorruptionConfig, Corruptor};
use sofia_datagen::datasets::Dataset;
use sofia_datagen::stream::TensorStream;
use sofia_eval::metrics::afe;
use sofia_eval::report::{text_table, write_report};
use sofia_tensor::{DenseTensor, ObservedTensor};

struct ForecastRow {
    label: String,
    afe: f64,
}

fn sofia_afe(
    dataset: Dataset,
    missing_pct: u32,
    scale: f64,
    t_hist: usize,
    t_f: usize,
    max_outer: usize,
    seed: u64,
) -> f64 {
    let stream = dataset.scaled_stream(scale, seed);
    let m = stream.period();
    let setting = CorruptionConfig::from_percents(missing_pct, 20, 5.0);
    let corruptor = Corruptor::new(setting, stream.max_abs_over_season(), seed ^ 0xf00d);
    let startup: Vec<ObservedTensor> = (0..3 * m)
        .map(|t| corruptor.corrupt(&stream.clean_slice(t), t))
        .collect();
    let config = sofia_config(dataset.paper_rank(), m, max_outer);
    let mut model = Sofia::init(&config, &startup, seed).expect("init");
    for t in 3 * m..t_hist {
        let slice = corruptor.corrupt(&stream.clean_slice(t), t);
        model.update_only(&slice);
    }
    let pairs: Vec<(DenseTensor, DenseTensor)> = (1..=t_f)
        .map(|h| (model.forecast_slice(h), stream.clean_slice(t_hist + h - 1)))
        .collect();
    afe(&pairs)
}

fn smf_afe(dataset: Dataset, scale: f64, t_hist: usize, t_f: usize, seed: u64) -> f64 {
    let stream = dataset.scaled_stream(scale, seed);
    let m = stream.period();
    let setting = CorruptionConfig::from_percents(0, 20, 5.0);
    let corruptor = Corruptor::new(setting, stream.max_abs_over_season(), seed ^ 0xf00d);
    let startup: Vec<ObservedTensor> = (0..3 * m)
        .map(|t| corruptor.corrupt(&stream.clean_slice(t), t))
        .collect();
    let mut model = Smf::init(&startup, dataset.paper_rank(), m, 0.1, seed);
    for t in 3 * m..t_hist {
        model.step(&corruptor.corrupt(&stream.clean_slice(t), t));
    }
    let pairs: Vec<(DenseTensor, DenseTensor)> = (1..=t_f)
        .map(|h| {
            (
                model.forecast(h).expect("SMF forecasts"),
                stream.clean_slice(t_hist + h - 1),
            )
        })
        .collect();
    afe(&pairs)
}

fn cphw_afe(
    dataset: Dataset,
    scale: f64,
    t_hist: usize,
    t_f: usize,
    max_als: usize,
    seed: u64,
) -> f64 {
    let stream = dataset.scaled_stream(scale, seed);
    let m = stream.period();
    let setting = CorruptionConfig::from_percents(0, 20, 5.0);
    let corruptor = Corruptor::new(setting, stream.max_abs_over_season(), seed ^ 0xf00d);
    let history: Vec<ObservedTensor> = (0..t_hist)
        .map(|t| corruptor.corrupt(&stream.clean_slice(t), t))
        .collect();
    let model = CpHw::fit(&history, dataset.paper_rank(), m, max_als, seed).expect("fit");
    let pairs: Vec<(DenseTensor, DenseTensor)> = (1..=t_f)
        .map(|h| (model.forecast(h), stream.clean_slice(t_hist + h - 1)))
        .collect();
    afe(&pairs)
}

fn main() {
    let args = ExpArgs::from_env();
    println!("Figure 6: average forecasting error (AFE), outliers (·,20,5) everywhere");
    println!("SOFIA evaluated at 0/30/50/70% missing; SMF/CPHW fully observed");
    println!();

    let mut csv = String::from("dataset,method,afe\n");
    for dataset in Dataset::all() {
        let m = dataset.period();
        // The paper uses t_f = 200 (100 for NYC); quick runs shrink with m.
        let (t_hist, t_f, max_outer, max_als) = if args.full {
            let t_f = if dataset == Dataset::NycTaxi {
                100
            } else {
                200
            };
            (dataset.stream_len() - t_f, t_f, 300, 300)
        } else {
            (6 * m, args.steps.unwrap_or(2 * m).min(2 * m), 150, 100)
        };

        let mut rows: Vec<ForecastRow> = Vec::new();
        for missing in [0u32, 30, 50, 70] {
            let afe_v = sofia_afe(
                dataset, missing, args.scale, t_hist, t_f, max_outer, args.seed,
            );
            rows.push(ForecastRow {
                label: format!("SOFIA ({missing},20,5)"),
                afe: afe_v,
            });
        }
        rows.push(ForecastRow {
            label: "SMF (0,20,5)".into(),
            afe: smf_afe(dataset, args.scale, t_hist, t_f, args.seed),
        });
        rows.push(ForecastRow {
            label: "CPHW (0,20,5)".into(),
            afe: cphw_afe(dataset, args.scale, t_hist, t_f, max_als, args.seed),
        });

        let best_sofia = rows[..4]
            .iter()
            .map(|r| r.afe)
            .fold(f64::INFINITY, f64::min);
        let best_comp = rows[4..]
            .iter()
            .map(|r| r.afe)
            .fold(f64::INFINITY, f64::min);
        let improvement = 100.0 * (1.0 - best_sofia / best_comp);

        println!("--- {} (t_f = {t_f})", dataset.name());
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| vec![r.label.clone(), format!("{:.3}", r.afe)])
            .collect();
        print!("{}", text_table(&["algorithm (X,Y,Z)", "AFE"], &table_rows));
        println!("SOFIA (best) vs best competitor: {improvement:+.0}%");
        println!();
        for r in &rows {
            csv.push_str(&format!("{},{},{:.6}\n", dataset.name(), r.label, r.afe));
        }
    }
    write_report(&args.out.join("fig6_afe.csv"), &csv).expect("write csv");
    println!("CSV written to {}", args.out.join("fig6_afe.csv").display());
}
