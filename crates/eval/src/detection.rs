//! Outlier-detection scoring: how well does a method's estimated outlier
//! tensor `O_t` localize the *injected* outliers?
//!
//! The paper evaluates imputation/forecasting error only; detection
//! quality is implicit (good imputation under corruption requires finding
//! the outliers). This module makes it explicit: precision/recall/F1 of
//! the non-zero entries of `O_t` against the corruptor's ground-truth
//! labels ([`sofia_datagen::corrupt::Corruptor::corrupt_labeled`]).

use sofia_tensor::DenseTensor;

/// Aggregated detection counts over a stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionCounts {
    /// Injected outliers that were flagged.
    pub true_positives: usize,
    /// Flags on clean entries.
    pub false_positives: usize,
    /// Injected outliers that were missed.
    pub false_negatives: usize,
}

impl DetectionCounts {
    /// Precision `TP / (TP + FP)` (NaN when nothing was flagged).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return f64::NAN;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Recall `TP / (TP + FN)` (NaN when nothing was injected).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return f64::NAN;
        }
        self.true_positives as f64 / denom as f64
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if !p.is_finite() || !r.is_finite() || p + r == 0.0 {
            return f64::NAN;
        }
        2.0 * p * r / (p + r)
    }

    /// Accumulates another step's counts.
    pub fn add(&mut self, other: DetectionCounts) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }
}

/// Scores one step: entries of `outliers` with `|o| > threshold` are the
/// flags; `injected` are the ground-truth (observed) outlier offsets.
pub fn score_step(outliers: &DenseTensor, injected: &[usize], threshold: f64) -> DetectionCounts {
    let mut counts = DetectionCounts::default();
    let mut injected_sorted = injected.to_vec();
    injected_sorted.sort_unstable();
    for off in 0..outliers.len() {
        let flagged = outliers.get_flat(off).abs() > threshold;
        let is_injected = injected_sorted.binary_search(&off).is_ok();
        match (flagged, is_injected) {
            (true, true) => counts.true_positives += 1,
            (true, false) => counts.false_positives += 1,
            (false, true) => counts.false_negatives += 1,
            (false, false) => {}
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_tensor::Shape;

    fn outliers(vals: &[f64]) -> DenseTensor {
        DenseTensor::from_vec(Shape::new(&[vals.len()]), vals.to_vec())
    }

    #[test]
    fn perfect_detection() {
        let o = outliers(&[0.0, 5.0, 0.0, -4.0]);
        let c = score_step(&o, &[1, 3], 1.0);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 0);
        assert_eq!(c.false_negatives, 0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn misses_and_false_alarms() {
        let o = outliers(&[3.0, 0.0, 0.0, 0.0]);
        let c = score_step(&o, &[1], 1.0);
        assert_eq!(c.true_positives, 0);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert!(c.f1().is_nan());
    }

    #[test]
    fn threshold_gates_flags() {
        let o = outliers(&[0.5, 2.0]);
        let tight = score_step(&o, &[0, 1], 1.0);
        assert_eq!(tight.true_positives, 1);
        assert_eq!(tight.false_negatives, 1);
        let loose = score_step(&o, &[0, 1], 0.1);
        assert_eq!(loose.true_positives, 2);
    }

    #[test]
    fn counts_accumulate() {
        let mut total = DetectionCounts::default();
        total.add(DetectionCounts {
            true_positives: 3,
            false_positives: 1,
            false_negatives: 2,
        });
        total.add(DetectionCounts {
            true_positives: 1,
            false_positives: 0,
            false_negatives: 0,
        });
        assert_eq!(total.true_positives, 4);
        assert!((total.precision() - 0.8).abs() < 1e-12);
        assert!((total.recall() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases_are_nan() {
        let c = DetectionCounts::default();
        assert!(c.precision().is_nan());
        assert!(c.recall().is_nan());
        assert!(c.f1().is_nan());
    }
}
