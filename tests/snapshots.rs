//! Property tests for universal model snapshots: for **every**
//! snapshot-capable model in the workspace, `save → restore → step-N`
//! must be bit-exact against an uninterrupted run — not just for SOFIA.
//!
//! Covered: the Holt-Winters family (additive, multiplicative,
//! damped-trend) via their `sofia-timeseries` snapshot methods, and the
//! served models (SOFIA, SMF, OnlineSGD) via the
//! `sofia_core::snapshot::{SnapshotModel, RestoreModel}` capability
//! traits, round-tripped through the tagged v2 checkpoint envelope
//! exactly as the fleet's durability layer does it.

use proptest::prelude::*;
use sofia::baselines::common::reconstruct_slice;
use sofia::baselines::{OnlineSgd, Smf};
use sofia::core::config::SofiaConfig;
use sofia::core::snapshot::{self, RestoreModel, SnapshotModel};
use sofia::core::traits::StreamingFactorizer;
use sofia::core::Sofia;
use sofia::datagen::seasonal::SeasonalStream;
use sofia::datagen::stream::TensorStream;
use sofia::tensor::random::random_factors;
use sofia::tensor::{Matrix, ObservedTensor};
use sofia::timeseries::holt_winters::{HoltWinters, HwParams, HwState};
use sofia::timeseries::variants::{DampedHw, MultiplicativeHw};

/// Round-trips a served model through the v2 envelope (the exact path
/// the fleet's durability layer takes) and returns the restored model.
fn through_envelope<M: SnapshotModel + RestoreModel>(model: &M, steps: u64) -> M {
    let text = snapshot::wrap(model.snapshot_kind(), steps, &model.snapshot());
    let env = snapshot::parse(&text).expect("envelope parses");
    assert_eq!(env.kind, M::KIND);
    assert_eq!(env.steps, steps);
    M::restore(&env.payload).expect("payload restores")
}

/// Asserts two factorizers produce byte-identical outputs over `slices`.
fn assert_steps_bit_exact<M: StreamingFactorizer>(a: &mut M, b: &mut M, slices: &[ObservedTensor]) {
    for (t, slice) in slices.iter().enumerate() {
        let oa = a.step(slice);
        let ob = b.step(slice);
        assert_eq!(
            oa.completed.data(),
            ob.completed.data(),
            "completed diverged at step {t}"
        );
        match (&oa.outliers, &ob.outliers) {
            (None, None) => {}
            (Some(x), Some(y)) => assert_eq!(x.data(), y.data(), "outliers diverged at step {t}"),
            _ => panic!("outlier capability diverged at step {t}"),
        }
    }
}

proptest! {
    #[test]
    fn additive_hw_roundtrip(
        seed in 0u64..10_000,
        period in 2usize..7,
        warm in 0usize..12,
    ) {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        use rand::Rng as _;
        let params = HwParams::clamped(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>());
        let seasonal: Vec<f64> = (0..period).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        let phase = rng.gen_range(0usize..period);
        let mut hw = HoltWinters::new(
            params,
            HwState::new(rng.gen::<f64>() * 10.0, rng.gen::<f64>() - 0.5, seasonal, phase),
        );
        for _ in 0..warm {
            hw.update(rng.gen::<f64>() * 6.0);
        }
        let mut restored = HoltWinters::restore(&hw.snapshot()).expect("restore");
        prop_assert_eq!(&hw, &restored);
        for _ in 0..8 {
            let y = rng.gen::<f64>() * 6.0 - 3.0;
            prop_assert_eq!(hw.update(y).to_bits(), restored.update(y).to_bits());
        }
        for h in 1..=period {
            prop_assert_eq!(hw.forecast(h).to_bits(), restored.forecast(h).to_bits());
        }
    }

    #[test]
    fn multiplicative_hw_roundtrip(seed in 0u64..10_000, period in 2usize..6) {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        use rand::Rng as _;
        let params = HwParams::clamped(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>());
        let seasonal: Vec<f64> = (0..period).map(|_| 0.5 + rng.gen::<f64>()).collect();
        let mut hw = MultiplicativeHw::new(
            params,
            5.0 + rng.gen::<f64>() * 10.0,
            rng.gen::<f64>() * 0.4,
            seasonal,
            rng.gen_range(0usize..period),
        );
        for _ in 0..6 {
            hw.update(8.0 + rng.gen::<f64>() * 4.0);
        }
        let mut restored = MultiplicativeHw::restore(&hw.snapshot()).expect("restore");
        prop_assert_eq!(&hw, &restored);
        for _ in 0..8 {
            let y = 8.0 + rng.gen::<f64>() * 4.0;
            prop_assert_eq!(hw.update(y).to_bits(), restored.update(y).to_bits());
        }
    }

    #[test]
    fn damped_hw_roundtrip(seed in 0u64..10_000, period in 2usize..6) {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        use rand::Rng as _;
        let params = HwParams::clamped(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>());
        let seasonal: Vec<f64> = (0..period).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let mut hw = DampedHw::new(
            params,
            0.05 + rng.gen::<f64>() * 0.95,
            rng.gen::<f64>() * 10.0,
            rng.gen::<f64>(),
            seasonal,
            rng.gen_range(0usize..period),
        );
        for _ in 0..6 {
            hw.update(rng.gen::<f64>() * 6.0);
        }
        let mut restored = DampedHw::restore(&hw.snapshot()).expect("restore");
        prop_assert_eq!(&hw, &restored);
        for _ in 0..8 {
            let y = rng.gen::<f64>() * 6.0;
            prop_assert_eq!(hw.update(y).to_bits(), restored.update(y).to_bits());
        }
        for h in 1..=2 * period {
            prop_assert_eq!(hw.forecast(h).to_bits(), restored.forecast(h).to_bits());
        }
    }
}

proptest! {
    // The factorizer round-trips run warm-start ALS per case; keep the
    // case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn online_sgd_roundtrip(seed in 0u64..1000, warm in 1usize..8) {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        let truth = random_factors(&[4, 3], 2, &mut rng);
        let slice = |t: usize| {
            let w = vec![1.5 + (t as f64 * 0.4).sin(), -0.5 + (t as f64 * 0.3).cos()];
            ObservedTensor::fully_observed(reconstruct_slice(&truth, &w))
        };
        let startup: Vec<ObservedTensor> = (0..8).map(slice).collect();
        let mut model = OnlineSgd::init(&startup, 2, 0.1, seed);
        for t in 8..8 + warm {
            model.step(&slice(t));
        }
        let mut restored = through_envelope(&model, warm as u64);
        let future: Vec<ObservedTensor> = (8 + warm..16 + warm).map(slice).collect();
        assert_steps_bit_exact(&mut model, &mut restored, &future);
    }

    #[test]
    fn smf_roundtrip(seed in 0u64..1000, period in 3usize..6) {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        let truth = random_factors(&[4, 3], 2, &mut rng);
        let slice = |t: usize| {
            let phase = 2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64;
            let w = vec![2.0 + phase.sin(), -1.0 + 0.6 * phase.cos()];
            ObservedTensor::fully_observed(reconstruct_slice(&truth, &w))
        };
        let startup: Vec<ObservedTensor> = (0..2 * period).map(slice).collect();
        let mut model = Smf::init(&startup, 2, period, 0.1, seed);
        for t in 2 * period..3 * period {
            model.step(&slice(t));
        }
        let mut restored = through_envelope(&model, period as u64);
        let future: Vec<ObservedTensor> = (3 * period..5 * period).map(slice).collect();
        assert_steps_bit_exact(&mut model, &mut restored, &future);
        for h in 1..=period {
            let (a, b) = (model.forecast(h), restored.forecast(h));
            prop_assert_eq!(a.unwrap().data(), b.unwrap().data());
        }
    }
}

proptest! {
    // SOFIA initialization (ALS) dominates; a handful of cases over small
    // dims still exercises the full state surface (factors, history, HW
    // bank, sigma, steps).
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sofia_roundtrip(seed in 0u64..100, warm in 1usize..5) {
        let period = 4;
        let stream = SeasonalStream::paper_fig2(&[3, 3], 2, period, 900 + seed);
        let config = SofiaConfig::new(2, period)
            .with_lambdas(0.01, 0.01, 10.0)
            .with_als_limits(1e-3, 1, 30);
        let t0 = 3 * period;
        let startup: Vec<ObservedTensor> = (0..t0)
            .map(|t| ObservedTensor::fully_observed(stream.clean_slice(t)))
            .collect();
        let mut model = Sofia::init(&config, &startup, seed).expect("init");
        for t in t0..t0 + warm {
            StreamingFactorizer::step(&mut model, &ObservedTensor::fully_observed(stream.clean_slice(t)));
        }
        let mut restored = through_envelope(&model, warm as u64);
        let future: Vec<ObservedTensor> = (t0 + warm..t0 + warm + 2 * period)
            .map(|t| ObservedTensor::fully_observed(stream.clean_slice(t)))
            .collect();
        assert_steps_bit_exact(&mut model, &mut restored, &future);
        for h in 1..=period {
            prop_assert_eq!(
                model.forecast_slice(h).data(),
                restored.forecast_slice(h).data()
            );
        }
    }
}

/// Non-property sanity check: the three served kinds dispatch to three
/// distinct tags, so envelopes can never restore through the wrong impl.
#[test]
fn served_kind_tags_are_distinct() {
    let tags = [
        <Sofia as RestoreModel>::KIND,
        <Smf as RestoreModel>::KIND,
        <OnlineSgd as RestoreModel>::KIND,
    ];
    assert_eq!(tags, ["sofia", "smf", "online-sgd"]);
    let model = OnlineSgd::new(vec![Matrix::identity(2), Matrix::identity(2)], 0.1);
    assert_eq!(model.snapshot_kind(), <OnlineSgd as RestoreModel>::KIND);
}
