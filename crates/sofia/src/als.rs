//! SOFIA_ALS — the batch update of Algorithm 2.
//!
//! Alternating least squares over the factor matrices of the smoothness-
//! regularized objective (10). Non-temporal factors are updated row by row
//! via Theorem 1 (`u = B⁻¹c` over observed entries); the temporal factor is
//! updated row by row via Theorem 2 / Eq. (17), whose five boundary cases
//! are realized here as "add `λ` to the diagonal and `λ·u_neighbor` to the
//! right-hand side for every *existing* ±1 (temporal) and ±m (seasonal)
//! neighbor" — exactly the case analysis of Eq. (18).
//!
//! Setting `λ₁ = λ₂ = 0` recovers the vanilla ALS of Zhou et al. used as
//! the Figure 2 baseline.

use sofia_tensor::linalg::solve_spd_ridge;
use sofia_tensor::{kruskal, DenseTensor, Matrix, ObservedTensor};

/// Options controlling a SOFIA_ALS run.
#[derive(Debug, Clone, PartialEq)]
pub struct AlsOptions {
    /// Temporal smoothness weight `λ₁`.
    pub lambda1: f64,
    /// Seasonal smoothness weight `λ₂`.
    pub lambda2: f64,
    /// Seasonal period `m`.
    pub period: usize,
    /// Convergence tolerance on the fitness change (Algorithm 2, line 15).
    pub tol: f64,
    /// Maximum number of ALS sweeps.
    pub max_iters: usize,
}

impl AlsOptions {
    /// Options for plain (vanilla) ALS: no smoothness.
    pub fn vanilla(tol: f64, max_iters: usize) -> Self {
        Self {
            lambda1: 0.0,
            lambda2: 0.0,
            period: 1,
            tol,
            max_iters,
        }
    }
}

/// Statistics of a SOFIA_ALS run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlsStats {
    /// Number of ALS sweeps performed.
    pub iterations: usize,
    /// Final fitness `1 − ‖Ω ⊛ (Y* − X̂)‖_F / ‖Ω ⊛ Y*‖_F`.
    pub fitness: f64,
}

/// Per-row normal systems `B⁽ⁿ⁾_{iₙ}, c⁽ⁿ⁾_{iₙ}` for one mode
/// (Eqs. (14), (15)), stored flat.
struct RowSystems {
    rank: usize,
    /// `rows × R × R`, row-major per row.
    b: Vec<f64>,
    /// `rows × R`.
    c: Vec<f64>,
    /// Number of observed entries contributing to each row.
    counts: Vec<usize>,
}

impl RowSystems {
    fn new(rows: usize, rank: usize) -> Self {
        Self {
            rank,
            b: vec![0.0; rows * rank * rank],
            c: vec![0.0; rows * rank],
            counts: vec![0; rows],
        }
    }

    /// Sums another accumulator into this one (parallel merge).
    fn merge(&mut self, other: &RowSystems) {
        debug_assert_eq!(self.b.len(), other.b.len());
        for (a, &v) in self.b.iter_mut().zip(&other.b) {
            *a += v;
        }
        for (a, &v) in self.c.iter_mut().zip(&other.c) {
            *a += v;
        }
        for (a, &v) in self.counts.iter_mut().zip(&other.counts) {
            *a += v;
        }
    }

    #[inline]
    fn accumulate(&mut self, row: usize, h: &[f64], y: f64) {
        let r = self.rank;
        let b = &mut self.b[row * r * r..(row + 1) * r * r];
        let c = &mut self.c[row * r..(row + 1) * r];
        for a in 0..r {
            let ha = h[a];
            c[a] += y * ha;
            if ha == 0.0 {
                continue;
            }
            for bb in a..r {
                b[a * r + bb] += ha * h[bb];
            }
        }
        self.counts[row] += 1;
    }

    /// Returns `(B, c, count)` for a row, with `B`'s upper triangle
    /// mirrored into a full symmetric matrix.
    fn row_system(&self, row: usize) -> (Matrix, Vec<f64>, usize) {
        let r = self.rank;
        let mut full = Matrix::zeros(r, r);
        let b = &self.b[row * r * r..(row + 1) * r * r];
        for a in 0..r {
            for bb in a..r {
                let v = b[a * r + bb];
                full.set(a, bb, v);
                full.set(bb, a, v);
            }
        }
        let c = self.c[row * r..(row + 1) * r].to_vec();
        (full, c, self.counts[row])
    }
}

/// Accumulates the per-row normal systems of mode `mode` over all observed
/// entries of `data`, with `values[off]` used as the regressand
/// (`y* = y − o` in Theorem 1).
fn accumulate_offsets(
    data: &ObservedTensor,
    values: &DenseTensor,
    factors: &[Matrix],
    mode: usize,
    offsets: &[usize],
) -> RowSystems {
    let shape = data.shape();
    let order = shape.order();
    let rank = factors[0].cols();
    let mut sys = RowSystems::new(shape.dim(mode), rank);
    let mut idx = vec![0usize; order];
    let mut h = vec![0.0f64; rank];
    for &off in offsets {
        shape.unravel_into(off, &mut idx);
        // h = ⊛_{l≠mode} u⁽ˡ⁾_{iₗ}
        h.iter_mut().for_each(|v| *v = 1.0);
        for (l, factor) in factors.iter().enumerate() {
            if l == mode {
                continue;
            }
            let row = factor.row(idx[l]);
            for k in 0..rank {
                h[k] *= row[k];
            }
        }
        sys.accumulate(idx[mode], &h, values.get_flat(off));
    }
    sys
}

/// Accumulates the per-row normal systems, optionally fanning the observed
/// entries out over `threads` scoped worker threads with per-thread
/// accumulators merged at the end. The result is numerically equal to the
/// serial pass up to floating-point summation order.
fn accumulate_mode_threaded(
    data: &ObservedTensor,
    values: &DenseTensor,
    factors: &[Matrix],
    mode: usize,
    threads: usize,
) -> RowSystems {
    let offsets = data.mask().observed_offsets();
    if threads <= 1 || offsets.len() < 4 * threads {
        return accumulate_offsets(data, values, factors, mode, offsets);
    }
    let chunk = offsets.len().div_ceil(threads);
    let partials: Vec<RowSystems> = std::thread::scope(|scope| {
        let handles: Vec<_> = offsets
            .chunks(chunk)
            .map(|part| scope.spawn(move || accumulate_offsets(data, values, factors, mode, part)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("accumulator thread panicked"))
            .collect()
    });
    let mut iter = partials.into_iter();
    let mut sys = iter.next().expect("at least one partial");
    for p in iter {
        sys.merge(&p);
    }
    sys
}

/// Fitness `1 − ‖Ω ⊛ (Y* − X̂)‖_F / ‖Ω ⊛ Y*‖_F` evaluated lazily at
/// observed entries only (Algorithm 2, line 14).
pub fn masked_fitness(data: &ObservedTensor, values: &DenseTensor, factors: &[Matrix]) -> f64 {
    let shape = data.shape();
    let refs: Vec<&Matrix> = factors.iter().collect();
    let mut idx = vec![0usize; shape.order()];
    let mut num = 0.0;
    let mut den = 0.0;
    for &off in data.mask().observed_offsets() {
        shape.unravel_into(off, &mut idx);
        let pred = kruskal::kruskal_at(&refs, &idx);
        let y = values.get_flat(off);
        num += (y - pred) * (y - pred);
        den += y * y;
    }
    if den == 0.0 {
        return 1.0;
    }
    1.0 - (num / den).sqrt()
}

/// Runs SOFIA_ALS (Algorithm 2) on the outlier-removed tensor
/// `values = Y − O`, restricted to `data`'s observed entries, updating
/// `factors` in place. The last factor is the temporal one.
///
/// Returns run statistics. The caller obtains the completed tensor via
/// [`reconstruct`].
pub fn sofia_als(
    data: &ObservedTensor,
    values: &DenseTensor,
    factors: &mut [Matrix],
    opts: &AlsOptions,
) -> AlsStats {
    sofia_als_threaded(data, values, factors, opts, 1)
}

/// [`sofia_als`] with the per-sweep accumulation passes fanned out over
/// `threads` workers (std scoped threads). Useful for large
/// start-up tensors; results agree with the serial path up to
/// floating-point summation order.
pub fn sofia_als_threaded(
    data: &ObservedTensor,
    values: &DenseTensor,
    factors: &mut [Matrix],
    opts: &AlsOptions,
    threads: usize,
) -> AlsStats {
    let order = data.shape().order();
    assert_eq!(factors.len(), order, "one factor per mode required");
    assert!(order >= 2, "need at least 2 modes");
    for (n, f) in factors.iter().enumerate() {
        assert_eq!(
            f.rows(),
            data.shape().dim(n),
            "factor {n} row count mismatch"
        );
    }
    let rank = factors[0].cols();
    let temporal = order - 1;

    let mut prev_fitness = f64::NEG_INFINITY;
    let mut iterations = 0;
    for _ in 0..opts.max_iters {
        iterations += 1;

        // --- Non-temporal modes: Theorem 1 row updates + renormalization.
        for n in 0..temporal {
            let sys = accumulate_mode_threaded(data, values, factors, n, threads);
            for i in 0..factors[n].rows() {
                let (b, c, count) = sys.row_system(i);
                if count == 0 {
                    continue; // no information: keep the previous row
                }
                if let Ok(x) = solve_spd_ridge(&b, &c, 1e-10) {
                    factors[n].row_mut(i).copy_from_slice(&x);
                }
            }
            // Lines 7-9: push column norms into the temporal factor.
            for r in 0..rank {
                let norm = factors[n].col_norm(r);
                if norm > 0.0 {
                    factors[temporal].scale_col(r, norm);
                    factors[n].scale_col(r, 1.0 / norm);
                }
            }
        }

        // --- Temporal mode: Theorem 2 / Eq. (17) row updates.
        let sys = accumulate_mode_threaded(data, values, factors, temporal, threads);
        let rows = factors[temporal].rows();
        let m = opts.period;
        for i in 0..rows {
            let (mut b, mut c, _count) = sys.row_system(i);
            let mut diag = 0.0;
            // ±1 temporal neighbors (λ₁ terms of Eq. (18) K).
            for j in [i.checked_sub(1), (i + 1 < rows).then_some(i + 1)]
                .into_iter()
                .flatten()
            {
                diag += opts.lambda1;
                let neighbor = factors[temporal].row(j);
                for k in 0..rank {
                    c[k] += opts.lambda1 * neighbor[k];
                }
            }
            // ±m seasonal neighbors (λ₂ terms of Eq. (18) H).
            if m >= 1 {
                for j in [i.checked_sub(m), (i + m < rows).then_some(i + m)]
                    .into_iter()
                    .flatten()
                {
                    diag += opts.lambda2;
                    let neighbor = factors[temporal].row(j);
                    for k in 0..rank {
                        c[k] += opts.lambda2 * neighbor[k];
                    }
                }
            }
            for k in 0..rank {
                let v = b.get(k, k) + diag;
                b.set(k, k, v);
            }
            if let Ok(x) = solve_spd_ridge(&b, &c, 1e-10) {
                factors[temporal].row_mut(i).copy_from_slice(&x);
            }
        }

        // --- Convergence check on fitness change (line 15).
        let fitness = masked_fitness(data, values, factors);
        if (fitness - prev_fitness).abs() < opts.tol {
            prev_fitness = fitness;
            break;
        }
        prev_fitness = fitness;
    }

    AlsStats {
        iterations,
        fitness: prev_fitness,
    }
}

/// Materializes `X̂ = ⟦U⁽¹⁾, …, U⁽ᴺ⁾⟧`.
pub fn reconstruct(factors: &[Matrix]) -> DenseTensor {
    let refs: Vec<&Matrix> = factors.iter().collect();
    kruskal::kruskal(&refs)
}

/// Masked residual objective `‖Ω ⊛ (Y* − X̂)‖²_F` (the data term of
/// Eq. (10)) — used by tests to verify monotone behaviour of ALS.
pub fn masked_residual_sq(data: &ObservedTensor, values: &DenseTensor, factors: &[Matrix]) -> f64 {
    let shape = data.shape();
    let refs: Vec<&Matrix> = factors.iter().collect();
    let mut idx = vec![0usize; shape.order()];
    let mut acc = 0.0;
    for &off in data.mask().observed_offsets() {
        shape.unravel_into(off, &mut idx);
        let pred = kruskal::kruskal_at(&refs, &idx);
        let y = values.get_flat(off);
        acc += (y - pred) * (y - pred);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sofia_tensor::random::random_factors;
    use sofia_tensor::Mask;

    /// Builds a rank-`r` ground-truth tensor plus random starting factors.
    fn setup(dims: &[usize], r: usize, seed: u64) -> (DenseTensor, Vec<Matrix>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let truth_factors = random_factors(dims, r, &mut rng);
        let refs: Vec<&Matrix> = truth_factors.iter().collect();
        let truth = kruskal::kruskal(&refs);
        let start = random_factors(dims, r, &mut rng);
        (truth, start)
    }

    #[test]
    fn vanilla_als_fits_fully_observed_low_rank() {
        let (truth, mut factors) = setup(&[6, 5, 8], 2, 1);
        let data = ObservedTensor::fully_observed(truth.clone());
        let opts = AlsOptions::vanilla(1e-9, 200);
        let stats = sofia_als(&data, data.values(), &mut factors, &opts);
        assert!(stats.fitness > 0.999, "fitness {}", stats.fitness);
        let xhat = reconstruct(&factors);
        let rel = (&xhat - &truth).frobenius_norm() / truth.frobenius_norm();
        assert!(rel < 1e-2, "relative error {rel}");
    }

    #[test]
    fn als_objective_is_monotone_nonincreasing() {
        let (truth, mut factors) = setup(&[5, 4, 6], 2, 7);
        let data = ObservedTensor::fully_observed(truth);
        let opts = AlsOptions::vanilla(0.0, 1); // one sweep at a time
        let mut prev = masked_residual_sq(&data, data.values(), &factors);
        for _ in 0..10 {
            sofia_als(&data, data.values(), &mut factors, &opts);
            let cur = masked_residual_sq(&data, data.values(), &factors);
            assert!(
                cur <= prev + 1e-9 * (1.0 + prev),
                "objective rose: {prev} -> {cur}"
            );
            prev = cur;
        }
    }

    #[test]
    fn als_completes_missing_entries() {
        let (truth, mut factors) = setup(&[6, 6, 10], 2, 3);
        let mut rng = SmallRng::seed_from_u64(99);
        let mask = Mask::random(truth.shape().clone(), 0.3, &mut rng);
        let data = ObservedTensor::new(truth.clone(), mask);
        let opts = AlsOptions::vanilla(1e-10, 300);
        sofia_als(&data, data.values(), &mut factors, &opts);
        let xhat = reconstruct(&factors);
        // Error on the *missing* entries must be small too.
        let mut err = 0.0;
        let mut norm = 0.0;
        for off in 0..truth.len() {
            if !data.mask().is_observed_flat(off) {
                let d = xhat.get_flat(off) - truth.get_flat(off);
                err += d * d;
                norm += truth.get_flat(off) * truth.get_flat(off);
            }
        }
        let rel = (err / norm).sqrt();
        assert!(rel < 0.05, "completion error {rel}");
    }

    #[test]
    fn smoothness_pulls_unobserved_temporal_rows_to_neighbors() {
        // A temporal row with NO observed entries: with temporal smoothness
        // it is interpolated from its neighbors; without smoothness it has
        // no information at all and stays wherever initialization left it.
        let dims = [4, 4, 9];
        let (truth, factors0) = setup(&dims, 1, 11);
        // Mask out time step 4 entirely.
        let mut observed = vec![true; truth.len()];
        let shape = truth.shape().clone();
        for idx in shape.indices() {
            if idx[2] == 4 {
                observed[shape.offset(&idx)] = false;
            }
        }
        let data = ObservedTensor::new(truth.clone(), Mask::from_vec(shape, observed));

        let hidden_err = |factors: &[Matrix]| -> f64 {
            let xhat = reconstruct(factors);
            (0..4)
                .flat_map(|i| (0..4).map(move |j| (i, j)))
                .map(|(i, j)| {
                    // Compare against the neighbor interpolation of truth,
                    // the best any method can do for a fully hidden slice.
                    let avg = 0.5 * (truth.get(&[i, j, 3]) + truth.get(&[i, j, 5]));
                    (xhat.get(&[i, j, 4]) - avg).abs()
                })
                .sum()
        };

        let mut smooth = factors0.clone();
        let opts_smooth = AlsOptions {
            lambda1: 0.05,
            lambda2: 0.0,
            period: 3,
            tol: 1e-12,
            max_iters: 500,
        };
        sofia_als(&data, data.values(), &mut smooth, &opts_smooth);

        let mut plain = factors0.clone();
        let opts_plain = AlsOptions::vanilla(1e-12, 500);
        sofia_als(&data, data.values(), &mut plain, &opts_plain);

        let err_smooth = hidden_err(&smooth);
        let err_plain = hidden_err(&plain);
        assert!(
            err_smooth < err_plain * 0.5,
            "smoothness should beat plain ALS on a hidden slice: \
             smooth={err_smooth} plain={err_plain}"
        );
    }

    #[test]
    fn seasonal_smoothness_uses_period_neighbors() {
        // Rank-1, strongly periodic temporal factor; hide one full period
        // position and check that λ₂ recovers it from the same phase in
        // other seasons.
        let m = 4;
        let len = 12;
        let a = Matrix::from_fn(3, 1, |i, _| 1.0 + i as f64);
        let b = Matrix::from_fn(3, 1, |i, _| 2.0 - i as f64 * 0.5);
        let pattern = [5.0, -3.0, 1.0, 2.0];
        let w = Matrix::from_fn(len, 1, |i, _| pattern[i % m]);
        let truth = kruskal::kruskal(&[&a, &b, &w]);
        let shape = truth.shape().clone();
        let mut observed = vec![true; truth.len()];
        for idx in shape.indices() {
            if idx[2] == 5 {
                observed[shape.offset(&idx)] = false;
            }
        }
        let data = ObservedTensor::new(truth.clone(), Mask::from_vec(shape, observed));
        let mut rng = SmallRng::seed_from_u64(5);
        let mut factors = random_factors(&[3, 3, len], 1, &mut rng);
        let opts = AlsOptions {
            lambda1: 0.0,
            lambda2: 0.5,
            period: m,
            tol: 1e-10,
            max_iters: 300,
        };
        sofia_als(&data, data.values(), &mut factors, &opts);
        let xhat = reconstruct(&factors);
        // Entry at hidden t=5 should match the periodic truth well.
        let rel =
            (xhat.get(&[1, 1, 5]) - truth.get(&[1, 1, 5])).abs() / truth.get(&[1, 1, 5]).abs();
        assert!(rel < 0.2, "seasonal completion rel err {rel}");
    }

    #[test]
    fn non_temporal_columns_are_unit_norm_after_run() {
        let (truth, mut factors) = setup(&[5, 7, 6], 3, 21);
        let data = ObservedTensor::fully_observed(truth);
        let opts = AlsOptions::vanilla(1e-8, 50);
        sofia_als(&data, data.values(), &mut factors, &opts);
        for n in 0..2 {
            for r in 0..3 {
                let norm = factors[n].col_norm(r);
                assert!((norm - 1.0).abs() < 1e-9, "mode {n} column {r} norm {norm}");
            }
        }
    }

    #[test]
    fn fitness_reaches_one_on_exact_fit() {
        let (truth, _) = setup(&[4, 4, 4], 2, 31);
        let data = ObservedTensor::fully_observed(truth.clone());
        // Feed the true factors: fitness must be ≈ 1.
        let mut rng = SmallRng::seed_from_u64(31);
        let truth_factors = random_factors(&[4, 4, 4], 2, &mut rng);
        let fit = masked_fitness(&data, data.values(), &truth_factors);
        assert!(fit > 1.0 - 1e-9, "fitness {fit}");
    }

    #[test]
    fn empty_rows_keep_previous_values() {
        // Mode-0 row 2 never observed: its factor row must stay unchanged.
        let dims = [3, 4, 5];
        let (truth, mut factors) = setup(&dims, 2, 41);
        let shape = truth.shape().clone();
        let mut observed = vec![true; truth.len()];
        for idx in shape.indices() {
            if idx[0] == 2 {
                observed[shape.offset(&idx)] = false;
            }
        }
        let data = ObservedTensor::new(truth, Mask::from_vec(shape, observed));
        let before = factors[0].row(2).to_vec();
        let opts = AlsOptions::vanilla(1e-8, 1);
        sofia_als(&data, data.values(), &mut factors, &opts);
        // Row was renormalized along with its column, but its direction
        // within the column scaling is preserved: check proportionality.
        let after = factors[0].row(2);
        for k in 0..2 {
            let col_norm_change = factors[0].col_norm(k); // = 1 after normalize
            assert!(col_norm_change > 0.0);
            // direction: after[k] should equal before[k] / original col norm
            // — we only check sign stability here.
            if before[k] != 0.0 {
                assert_eq!(after[k].signum(), before[k].signum());
            }
        }
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sofia_tensor::random::random_factors;
    use sofia_tensor::Mask;

    #[test]
    fn threaded_als_matches_serial() {
        let mut rng = SmallRng::seed_from_u64(91);
        let truth_f = random_factors(&[8, 7, 12], 3, &mut rng);
        let refs: Vec<&Matrix> = truth_f.iter().collect();
        let truth = kruskal::kruskal(&refs);
        let mask = Mask::random(truth.shape().clone(), 0.3, &mut rng);
        let data = ObservedTensor::new(truth, mask);
        let start = random_factors(&[8, 7, 12], 3, &mut rng);
        let opts = AlsOptions {
            lambda1: 0.01,
            lambda2: 0.01,
            period: 4,
            tol: 0.0,
            max_iters: 3,
        };
        let mut serial = start.clone();
        sofia_als(&data, data.values(), &mut serial, &opts);
        let mut parallel = start.clone();
        sofia_als_threaded(&data, data.values(), &mut parallel, &opts, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            let rel = a.diff_norm(b) / a.frobenius_norm().max(1e-12);
            assert!(rel < 1e-9, "serial/parallel divergence {rel}");
        }
    }

    #[test]
    fn threaded_with_one_thread_is_serial_path() {
        let mut rng = SmallRng::seed_from_u64(92);
        let truth_f = random_factors(&[5, 5, 6], 2, &mut rng);
        let refs: Vec<&Matrix> = truth_f.iter().collect();
        let truth = kruskal::kruskal(&refs);
        let data = ObservedTensor::fully_observed(truth);
        let start = random_factors(&[5, 5, 6], 2, &mut rng);
        let opts = AlsOptions::vanilla(0.0, 2);
        let mut a = start.clone();
        let mut b = start.clone();
        sofia_als(&data, data.values(), &mut a, &opts);
        sofia_als_threaded(&data, data.values(), &mut b, &opts, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data(), y.data());
        }
    }

    #[test]
    fn threaded_handles_tiny_inputs() {
        // Fewer observed entries than 4·threads: falls back to serial.
        let mut rng = SmallRng::seed_from_u64(93);
        let truth_f = random_factors(&[2, 2, 2], 1, &mut rng);
        let refs: Vec<&Matrix> = truth_f.iter().collect();
        let truth = kruskal::kruskal(&refs);
        let data = ObservedTensor::fully_observed(truth);
        let mut factors = random_factors(&[2, 2, 2], 1, &mut rng);
        let opts = AlsOptions::vanilla(1e-9, 5);
        let stats = sofia_als_threaded(&data, data.values(), &mut factors, &opts, 16);
        assert!(stats.fitness > 0.9);
    }
}
