//! Multi-process sharding: a cluster router over a multi-endpoint
//! [`ShardMap`].
//!
//! A cluster is N independent `sofia-net` servers (each wrapping its own
//! [`sofia_fleet::Fleet`] with its own checkpoint directory) plus one
//! ownership table: the [`ShardMap`] assigns every route slot — keyed by
//! the same stable FNV stream hash the engine uses — to one endpoint,
//! with per-stream **override** entries for migrated streams.
//! [`ClusterClient`] is the router: it holds the map and one lazy
//! [`Client`] connection per endpoint, sends `query` / `query_batch` /
//! `ingest` / `register` / `snapshot` / `deregister` to the owning
//! server, broadcasts `flush`, and merges `stats` across endpoints.
//!
//! ## Migration
//!
//! [`ClusterClient::migrate`] moves one stream between processes with
//! the wire verbs PR 4 already shipped plus the `snapshot` read path:
//!
//! 1. `flush` the source (read-your-writes: the snapshot must include
//!    every slice acknowledged so far);
//! 2. `snapshot` the stream — its checkpoint envelope, bit-exact;
//! 3. `register` the envelope on the target — the same restore path
//!    crash recovery uses, so the model resumes bit-exactly, and the
//!    target *persists* the arrival before acknowledging (when it runs
//!    a checkpoint policy), so step 5 never deletes the stream's only
//!    durable copy;
//! 4. flip the map entry ([`ShardMap::set_override`]) so routing
//!    follows the stream;
//! 5. `deregister` the old copy — unloaded *and* its checkpoint file
//!    deleted, so a restart of the source cannot resurrect it.
//!
//! ## A minimal single-writer coordinator — deliberately no consensus
//!
//! The `ClusterClient` performing a migration is the coordinator, and
//! the correctness argument is single-writer: while a stream is being
//! moved, no other client may ingest into it (slices raced between
//! steps 1 and 5 land on the source after its snapshot was taken and
//! are lost to the target). Likewise, other routers learn the flipped
//! entry only by rebuilding their map — the launch-time table served in
//! every member's handshake ([`crate::ServerConfig::cluster`]) is not
//! updated retroactively. Membership changes follow the same
//! philosophy: a crashed node is restarted and re-attached with
//! [`ClusterClient::repoint`] by whoever operates the cluster. This is
//! the smallest thing that is honest: ownership is consistent because
//! exactly one writer changes it, not because the processes agree on
//! anything.

use crate::client::{Client, ClientError, IngestReport};
use crate::stats::NetStats;
use crate::wire::ShardMap;
use sofia_fleet::{FleetStats, ModelHandle, Query, QueryResponse};
use sofia_tensor::ObservedTensor;
use std::collections::HashMap;

/// A routing client over many `sofia-net` servers sharing one
/// [`ShardMap`].
///
/// Mirrors the single-server [`Client`] surface (`query`, `query_batch`,
/// `ingest`, `flush`, `stats`, `register`, …) so code written against
/// one server drives a cluster unchanged — the map decides which socket
/// each stream's requests travel.
pub struct ClusterClient {
    map: ShardMap,
    /// One lazy connection per endpoint, keyed by the map's endpoint
    /// string (connected on first use, kept for the client's lifetime).
    conns: HashMap<String, Client>,
    name: String,
}

impl ClusterClient {
    /// Bootstraps from one **seed** member: connects, takes the
    /// handshake's [`ShardMap`] (a cluster member advertises the full
    /// table — [`crate::ServerConfig::cluster`]), and routes through it.
    /// The seed connection is kept when the seed address appears in the
    /// map.
    pub fn connect(seed: impl Into<String>) -> Result<ClusterClient, ClientError> {
        ClusterClient::connect_as(seed, "sofia-cluster-client")
    }

    /// [`ClusterClient::connect`] with an explicit client name.
    pub fn connect_as(seed: impl Into<String>, name: &str) -> Result<ClusterClient, ClientError> {
        let seed = seed.into();
        let client = Client::connect_as(&seed, name)?;
        let map = client.shard_map().clone();
        let mut cluster = ClusterClient::with_map(map, name);
        // Reuse the seed connection when the map names the seed by the
        // address we dialed; otherwise it is dropped and the map's own
        // endpoint names are dialed lazily.
        if cluster.map.distinct_endpoints().contains(&seed.as_str()) {
            cluster.conns.insert(seed, client);
        }
        Ok(cluster)
    }

    /// A router over an explicit ownership table (no seed handshake —
    /// connections open lazily as streams route to each endpoint).
    pub fn from_map(map: ShardMap) -> ClusterClient {
        ClusterClient::with_map(map, "sofia-cluster-client")
    }

    fn with_map(map: ShardMap, name: &str) -> ClusterClient {
        ClusterClient {
            map,
            conns: HashMap::new(),
            name: name.to_string(),
        }
    }

    /// The routing table (slots + overrides) this client is using.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The endpoint currently owning a stream (override entry first,
    /// hashed slot otherwise).
    pub fn endpoint_of(&self, stream: &str) -> &str {
        self.map.endpoint_of(stream)
    }

    /// The connection to `endpoint`, dialing it on first use.
    fn client_for(&mut self, endpoint: &str) -> Result<&mut Client, ClientError> {
        if !self.conns.contains_key(endpoint) {
            let client = Client::connect_as(endpoint, &self.name)?;
            self.conns.insert(endpoint.to_string(), client);
        }
        Ok(self.conns.get_mut(endpoint).expect("just inserted"))
    }

    /// The connection owning `stream`.
    fn owner(&mut self, stream: &str) -> Result<&mut Client, ClientError> {
        let ep = self.map.endpoint_of(stream).to_string();
        self.client_for(&ep)
    }

    /// One typed query, routed to the stream's owner.
    pub fn query(&mut self, stream: &str, query: Query) -> Result<QueryResponse, ClientError> {
        self.owner(stream)?.query(stream, query)
    }

    /// Many queries over many streams: requests are grouped by owning
    /// endpoint, each group travels as **one** `batch` frame (one shard
    /// round-trip per involved shard on that server), and the reply
    /// vector aligns with `requests` exactly like
    /// [`sofia_fleet::Fleet::query_batch`] — per-item failures stay
    /// item-level.
    pub fn query_batch(
        &mut self,
        requests: &[(&str, Query)],
    ) -> Result<Vec<Result<QueryResponse, sofia_fleet::FleetError>>, ClientError> {
        // Group request indices by endpoint, preserving request order
        // within each group (and a deterministic endpoint order).
        let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
        for (i, (stream, _)) in requests.iter().enumerate() {
            let ep = self.map.endpoint_of(stream).to_string();
            match groups.iter_mut().find(|(e, _)| *e == ep) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((ep, vec![i])),
            }
        }
        let mut out: Vec<Option<Result<QueryResponse, sofia_fleet::FleetError>>> =
            (0..requests.len()).map(|_| None).collect();
        for (ep, idxs) in groups {
            let sub: Vec<(&str, Query)> = idxs
                .iter()
                .map(|&i| (requests[i].0, requests[i].1.clone()))
                .collect();
            let answers = self.client_for(&ep)?.query_batch(&sub)?;
            for (&i, answer) in idxs.iter().zip(answers) {
                out[i] = Some(answer);
            }
        }
        Ok(out
            .into_iter()
            .map(|slot| slot.expect("every request slot is answered"))
            .collect())
    }

    /// Registers a stream on its owning endpoint by shipping the
    /// model's checkpoint envelope (see [`Client::register`]); returns
    /// whether the owner persisted it on arrival.
    pub fn register(&mut self, stream: &str, model: &ModelHandle) -> Result<bool, ClientError> {
        self.owner(stream)?.register(stream, model)
    }

    /// [`ClusterClient::register`] from raw envelope text.
    pub fn register_envelope(&mut self, stream: &str, envelope: &str) -> Result<bool, ClientError> {
        self.owner(stream)?.register_envelope(stream, envelope)
    }

    /// Batched, seq-tagged ingest routed to the stream's owner; the
    /// backpressure hand-back semantics are [`Client::ingest`]'s.
    pub fn ingest(
        &mut self,
        stream: &str,
        slices: Vec<ObservedTensor>,
    ) -> Result<IngestReport, ClientError> {
        self.owner(stream)?.ingest(stream, slices)
    }

    /// Blocking ingest (retries the rejected tail in order) routed to
    /// the stream's owner; returns the retry round-trips taken.
    pub fn ingest_blocking(
        &mut self,
        stream: &str,
        slices: Vec<ObservedTensor>,
    ) -> Result<u64, ClientError> {
        self.owner(stream)?.ingest_blocking(stream, slices)
    }

    /// The map's endpoints, owned — broadcast operations iterate these
    /// while `client_for` borrows `self` mutably.
    fn broadcast_endpoints(&self) -> Vec<String> {
        self.map
            .distinct_endpoints()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Cluster-wide read-your-writes barrier: flushes **every** endpoint
    /// in the map, so anything ingested anywhere before this returns is
    /// visible to every later query anywhere.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        for ep in self.broadcast_endpoints() {
            self.client_for(&ep)?.flush()?;
        }
        Ok(())
    }

    /// Merged statistics across every endpoint in the map. Shard
    /// indices are re-numbered to stay unique in the merged view (each
    /// endpoint's shards keep their relative order), so the aggregate
    /// counters ([`FleetStats::steps`] etc.) sum over the whole cluster.
    /// Each re-numbered entry is tagged with the endpoint it came from
    /// ([`sofia_fleet::ShardStats::endpoint`]), so the merged view keeps
    /// the shard → process attribution the re-numbering would otherwise
    /// lose.
    ///
    /// The per-shard sketch partials ride along untouched, so the
    /// cluster-wide rollups ([`FleetStats::ingest_latency`],
    /// [`FleetStats::forecast_error`]) *merge* the members' summaries —
    /// the moment half is bit-exact against a single process serving the
    /// same streams, and quantiles stay within the t-digest's documented
    /// bound. No step-count weighting, no averaging of averages.
    pub fn stats(&mut self) -> Result<FleetStats, ClientError> {
        let mut shards = Vec::new();
        for ep in self.broadcast_endpoints() {
            let stats = self.client_for(&ep)?.stats()?;
            let base = shards.len();
            for mut shard in stats.shards {
                shard.shard += base;
                shard.endpoint = Some(ep.clone());
                shards.push(shard);
            }
        }
        Ok(FleetStats { shards })
    }

    /// Node-health reports from every endpoint in the map, in
    /// first-appearance (map) order — the fixed fold order that makes
    /// [`ClusterMetrics::merged`] bit-reproducible across calls and
    /// across independent clients reading the same nodes.
    pub fn metrics(&mut self) -> Result<ClusterMetrics, ClientError> {
        let mut nodes = Vec::new();
        for ep in self.broadcast_endpoints() {
            let mut stats = self.client_for(&ep)?.metrics()?;
            stats.endpoint = Some(ep);
            nodes.push(stats);
        }
        Ok(ClusterMetrics { nodes })
    }

    /// Reads a stream's checkpoint envelope from its owner (see
    /// [`Client::snapshot`]).
    pub fn snapshot(&mut self, stream: &str) -> Result<String, ClientError> {
        self.owner(stream)?.snapshot(stream)
    }

    /// Removes a stream from its owner and drops its override entry if
    /// one existed (a later registration of the same id routes by hash
    /// again).
    pub fn deregister(&mut self, stream: &str) -> Result<(), ClientError> {
        self.owner(stream)?.deregister(stream)?;
        self.map.clear_override(stream);
        Ok(())
    }

    /// Moves one stream to another endpoint: flush the source, ship its
    /// checkpoint envelope over the wire into the target's `register`
    /// path, flip the map entry, and unload (+ delete) the old copy.
    /// See the module docs for the ordering and the single-writer
    /// assumption; the target may be any reachable `sofia-net` server,
    /// in the map or not.
    ///
    /// The target must **persist** the arrived stream (run a checkpoint
    /// policy): the final step deletes the source's checkpoint file, so
    /// a memory-only target would leave the stream one crash away from
    /// total loss. A non-durable target rolls the registration back and
    /// fails the migration with the source untouched.
    pub fn migrate(&mut self, stream: &str, to: &str) -> Result<(), ClientError> {
        let from = self.map.endpoint_of(stream).to_string();
        if from == to {
            return Err(ClientError::Protocol(format!(
                "stream `{stream}` is already served by `{to}`"
            )));
        }
        // 1–2: barrier, then read the envelope (bit-exact, includes
        // every acknowledged slice).
        let envelope = {
            let source = self.client_for(&from)?;
            source.flush()?;
            source.snapshot(stream)?
        };
        // 3: the envelope IS the registration payload on the target,
        // which persists it before acknowledging (or reports that it
        // cannot).
        let durable = self.client_for(to)?.register_envelope(stream, &envelope)?;
        if !durable {
            // Deleting the source's (possibly only) durable copy on the
            // word of a target that persisted nothing would let a
            // target crash destroy the stream everywhere. Roll back.
            let _ = self.client_for(to)?.deregister(stream);
            return Err(ClientError::Protocol(format!(
                "target `{to}` did not persist `{stream}` (no checkpoint policy); \
                 migration aborted, the source still serves the stream"
            )));
        }
        // 4: flip the map entry *before* unloading the source, so a
        // failure below leaves the stream reachable at its new home
        // (worst case: a stale copy lingers on the source). Moving a
        // stream back to its hashed slot owner needs no entry at all.
        if self.map.endpoints()[self.map.shard_of(stream)] == to {
            self.map.clear_override(stream);
        } else {
            self.map.set_override(stream, to);
        }
        // 5: unload the old copy; its checkpoint file goes with it, so
        // a source restart cannot resurrect the stream.
        self.client_for(&from)?.deregister(stream)?;
        Ok(())
    }

    /// Follows a restarted node to its new address: rewrites every map
    /// entry owned by `from` (slots and overrides) to `to` and drops
    /// the dead connection. Returns how many entries changed.
    pub fn repoint(&mut self, from: &str, to: &str) -> usize {
        self.conns.remove(from);
        self.map.repoint(from, to)
    }

    /// Drops the cached connection to an endpoint (it is re-dialed on
    /// next use). Useful after a server restart on the *same* address.
    pub fn disconnect(&mut self, endpoint: &str) -> bool {
        self.conns.remove(endpoint).is_some()
    }

    /// Asks every endpoint in the map to shut down gracefully (each
    /// drains its queues and writes final checkpoints). **Best-effort
    /// across the whole membership**: an unreachable node (e.g. one
    /// that already crashed) does not stop the remaining nodes from
    /// receiving their shutdown frames — every endpoint is attempted,
    /// and the first failure is reported afterwards. Returns the number
    /// of servers that acknowledged; consumes the router, since every
    /// connection dies with its server.
    pub fn shutdown_all(mut self) -> Result<usize, ClientError> {
        let mut stopped = 0;
        let mut first_error = None;
        for ep in self.broadcast_endpoints() {
            let client = match self.conns.remove(&ep) {
                Some(client) => Ok(client),
                None => Client::connect_as(&ep, &self.name),
            };
            match client.and_then(Client::shutdown_server) {
                Ok(()) => stopped += 1,
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(stopped),
        }
    }
}

/// A fleet-wide health report: one [`NetStats`] per endpoint (labelled,
/// in map order) plus a [`ClusterMetrics::merged`] rollup.
///
/// Kept per-node because the two views answer different questions:
/// "which node is hot" needs the partials, "is the fleet healthy"
/// needs the merge — same split the fleet stats make per shard.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// One report per endpoint, each with
    /// [`NetStats::endpoint`] set, in the map's first-appearance order.
    pub nodes: Vec<NetStats>,
}

impl ClusterMetrics {
    /// Folds the per-node reports into one cluster-wide [`NetStats`]
    /// in node order (see [`NetStats::merge`] for the per-field
    /// semantics). Folding in the fixed map order makes the merged
    /// settle-latency moments bit-exact against any other fold of the
    /// same node reports in the same order — wire forms included.
    pub fn merged(&self) -> NetStats {
        let mut out = NetStats::default();
        for node in &self.nodes {
            out.merge(node);
        }
        out
    }
}
