//! Table III — summary of datasets (synthetic proxies).
//!
//! Prints the dataset dimensions, periods, granularities, and the proxy
//! generators' empirical value ranges.

use sofia_bench::args::ExpArgs;
use sofia_datagen::datasets::Dataset;
use sofia_eval::report::text_table;

fn main() {
    let args = ExpArgs::from_env();
    let header = [
        "Dataset",
        "Dimension",
        "Period",
        "Granularity",
        "Rank (paper)",
        "max|x| (proxy)",
    ];
    let granularity = |d: Dataset| match d {
        Dataset::IntelLab => "every 10 minutes",
        Dataset::NetworkTraffic => "hourly",
        Dataset::ChicagoTaxi => "hourly",
        Dataset::NycTaxi => "daily",
    };
    let rows: Vec<Vec<String>> = Dataset::all()
        .iter()
        .map(|&d| {
            let [d1, d2] = d.spatial_dims();
            let stream = d.scaled_stream(args.scale.min(0.3), args.seed);
            vec![
                d.name().to_string(),
                format!("{}x{}x{}*", d1, d2, d.stream_len()),
                d.period().to_string(),
                granularity(d).to_string(),
                d.paper_rank().to_string(),
                format!("{:.2}", stream.max_abs_over_season()),
            ]
        })
        .collect();
    println!("Table III: dataset summary (synthetic proxies; * marks the time mode)");
    println!();
    print!("{}", text_table(&header, &rows));
}
