//! # sofia-core
//!
//! SOFIA: **S**easonality-aware **O**utlier-robust **F**actorization of
//! **I**ncomplete stre**A**ming tensors (Lee & Shin, ICDE 2021).
//!
//! SOFIA factorizes a stream of partially observed, outlier-contaminated
//! subtensors `Y_1, Y_2, …` online, imputing missing entries and
//! forecasting future subtensors. It couples three mutually reinforcing
//! components:
//!
//! 1. **Smooth CP factorization** — CP factorization with temporal and
//!    seasonal smoothness penalties on the temporal factor matrix
//!    (Eq. (10)/(11); [`als`], [`init`]);
//! 2. **Outlier removal** — Huber pre-cleaning of observations against
//!    one-step-ahead forecasts with a per-entry error-scale tensor
//!    (Eqs. (21)-(22); [`dynamic`]);
//! 3. **Temporal-pattern modelling** — an additive Holt-Winters model per
//!    CP component of the temporal factor (Eq. (26); [`hw`]).
//!
//! The top-level façade is [`model::Sofia`]; the generic streaming
//! interface implemented by SOFIA and every baseline is
//! [`traits::StreamingFactorizer`].
//!
//! ## Quick example
//!
//! ```
//! use sofia_core::config::SofiaConfig;
//! use sofia_core::model::Sofia;
//! use sofia_tensor::{DenseTensor, ObservedTensor, Shape};
//!
//! // A tiny rank-1 seasonal stream: X_t[i,j] = a_i * b_j * s(t).
//! let m = 6; // seasonal period
//! let slice = |t: usize| {
//!     let s = 1.5 + (2.0 * std::f64::consts::PI * t as f64 / m as f64).sin();
//!     ObservedTensor::fully_observed(DenseTensor::from_fn(
//!         Shape::new(&[3, 4]),
//!         |idx| (idx[0] + 1) as f64 * (idx[1] + 1) as f64 * s,
//!     ))
//! };
//! let config = SofiaConfig::new(2, m);
//! let init: Vec<_> = (0..3 * m).map(slice).collect();
//! let mut sofia = Sofia::init(&config, &init, 42).unwrap();
//! // Stream a few more slices and reconstruct them.
//! for t in 3 * m..3 * m + 4 {
//!     let out = sofia.step(&slice(t));
//!     assert_eq!(out.completed.shape().dims(), &[3, 4]);
//! }
//! ```

// Numeric kernels index several parallel arrays at once; plain index
// loops are the clearest form for them.
#![allow(clippy::needless_range_loop)]

pub mod als;
pub mod checkpoint;
pub mod config;
pub mod dynamic;
pub mod forecast;
pub mod hw;
pub mod init;
pub mod model;
pub mod snapshot;
pub mod traits;

pub use config::SofiaConfig;
pub use model::Sofia;
pub use snapshot::{RestoreModel, SnapshotModel};
pub use traits::{StepOutput, StreamingFactorizer};
