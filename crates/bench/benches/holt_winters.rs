//! Criterion bench: Holt-Winters substrate costs — per-observation update,
//! h-step forecast, and full SSE fitting (the per-component work of SOFIA's
//! §V-B phase).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sofia_timeseries::fit::fit_holt_winters;
use sofia_timeseries::holt_winters::{HoltWinters, HwParams, HwState};

fn seasonal_series(len: usize, m: usize) -> Vec<f64> {
    (0..len)
        .map(|t| {
            5.0 + 0.01 * t as f64
                + 2.0 * (2.0 * std::f64::consts::PI * (t % m) as f64 / m as f64).sin()
        })
        .collect()
}

fn bench_update(c: &mut Criterion) {
    let series = seasonal_series(1000, 24);
    c.bench_function("hw_update_1000_obs", |b| {
        b.iter_batched(
            || {
                HoltWinters::new(
                    HwParams::new(0.3, 0.1, 0.1),
                    HwState::new(5.0, 0.0, vec![0.0; 24], 0),
                )
            },
            |mut hw| {
                for &y in &series {
                    hw.update(y);
                }
                hw
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_forecast(c: &mut Criterion) {
    let hw = HoltWinters::new(
        HwParams::new(0.3, 0.1, 0.1),
        HwState::new(5.0, 0.1, (0..168).map(|i| (i % 7) as f64).collect(), 0),
    );
    c.bench_function("hw_forecast_h200", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for h in 1..=200 {
                acc += hw.forecast(h);
            }
            acc
        })
    });
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_fit");
    group.sample_size(10);
    for (len, m) in [(72usize, 24usize), (504, 168)] {
        let series = seasonal_series(len, m);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("len{len}_m{m}")),
            &series,
            |b, s| b.iter(|| fit_holt_winters(s, m).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_update, bench_forecast, bench_fit);
criterion_main!(benches);
