//! The slice-at-a-time tensor-stream abstraction.

use sofia_tensor::{DenseTensor, Shape};

/// A source of ground-truth tensor slices indexed by time.
///
/// Implementors generate the *clean* slice `X_t`; corruption (missing
/// entries, outliers) is layered on top by [`crate::corrupt::Corruptor`],
/// so every experiment can evaluate errors against the uncorrupted truth.
pub trait TensorStream {
    /// Shape of each slice (the non-temporal modes).
    fn slice_shape(&self) -> &Shape;

    /// Seasonal period `m` of the stream.
    fn period(&self) -> usize;

    /// The clean ground-truth slice at time `t`.
    fn clean_slice(&self, t: usize) -> DenseTensor;

    /// Convenience: materializes clean slices for `t ∈ [start, end)`.
    fn clean_range(&self, start: usize, end: usize) -> Vec<DenseTensor> {
        (start..end).map(|t| self.clean_slice(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(Shape);
    impl TensorStream for Constant {
        fn slice_shape(&self) -> &Shape {
            &self.0
        }
        fn period(&self) -> usize {
            4
        }
        fn clean_slice(&self, t: usize) -> DenseTensor {
            DenseTensor::full(self.0.clone(), t as f64)
        }
    }

    #[test]
    fn clean_range_materializes() {
        let s = Constant(Shape::new(&[2, 2]));
        let r = s.clean_range(3, 6);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].get(&[0, 0]), 3.0);
        assert_eq!(r[2].get(&[1, 1]), 5.0);
    }
}
