//! Integration tests of the typed query plane: batched multi-stream
//! queries costing one queue round-trip per involved shard (the
//! acceptance criterion, pinned via per-shard query counters), and
//! concurrent `query_batch` callers racing a live ingest thread.

use sofia_core::traits::{StepOutput, StreamingFactorizer};
use sofia_fleet::{
    Fleet, FleetConfig, MetricKind, ModelHandle, Query, QueryKind, QueryResponse, StreamKey,
};
use sofia_tensor::{DenseTensor, ObservedTensor, Shape};
use std::collections::HashSet;

/// Cheap deterministic model: completion reports the number of steps
/// taken; forecasts report it too.
#[derive(Debug, Clone, Default)]
struct Counter {
    steps: u64,
}

impl StreamingFactorizer for Counter {
    fn name(&self) -> &'static str {
        "counter"
    }
    fn step(&mut self, slice: &ObservedTensor) -> StepOutput {
        self.steps += 1;
        let mut completed = slice.values().clone();
        for v in completed.data_mut() {
            *v = self.steps as f64;
        }
        StepOutput {
            completed,
            outliers: None,
        }
    }
    fn forecast(&self, _h: usize) -> Option<DenseTensor> {
        Some(DenseTensor::full(Shape::new(&[1]), self.steps as f64))
    }
}

fn slice(v: f64) -> ObservedTensor {
    ObservedTensor::fully_observed(DenseTensor::full(Shape::new(&[2, 2]), v))
}

fn fleet_with_streams(shards: usize, streams: usize) -> (Fleet, Vec<StreamKey>) {
    let fleet = Fleet::new(FleetConfig {
        shards,
        queue_capacity: 64,
        checkpoint: None,
        evict_idle_after: None,
    })
    .expect("fleet");
    let keys = (0..streams)
        .map(|i| {
            fleet
                .register(
                    &format!("stream-{i:02}"),
                    ModelHandle::serve(Counter::default()),
                )
                .expect("register")
        })
        .collect();
    (fleet, keys)
}

/// The acceptance criterion: `query_batch` over M streams living on S
/// shards performs exactly one queue round-trip per involved shard,
/// while M single queries perform M.
#[test]
fn query_batch_costs_one_round_trip_per_involved_shard() {
    const SHARDS: usize = 3;
    const STREAMS: usize = 12;
    let (fleet, keys) = fleet_with_streams(SHARDS, STREAMS);
    for key in &keys {
        fleet.try_ingest(key, slice(1.0)).expect("ingest");
    }
    fleet.flush().expect("flush");

    let involved: HashSet<usize> = keys.iter().map(|k| k.shard()).collect();
    assert!(
        involved.len() > 1,
        "12 streams should spread over several of {SHARDS} shards"
    );

    // One batched call over every stream…
    let before = fleet.fleet_stats().expect("stats");
    let requests: Vec<(&str, Query)> = keys.iter().map(|k| (k.id(), Query::StreamStats)).collect();
    let responses = fleet.query_batch(&requests).expect("batch");
    assert_eq!(responses.len(), STREAMS);
    for (i, resp) in responses.iter().enumerate() {
        let QueryResponse::StreamStats(stats) = resp.as_ref().expect("all streams answer") else {
            panic!("mismatched response variant");
        };
        assert_eq!(stats.stream, keys[i].id(), "responses align with requests");
        assert_eq!(stats.steps, 1);
    }
    let after = fleet.fleet_stats().expect("stats");
    // …costs exactly one queue round-trip per involved shard…
    assert_eq!(
        after.query_batches() - before.query_batches(),
        involved.len() as u64,
        "one round-trip per involved shard"
    );
    // …and every request is counted under its kind.
    assert_eq!(
        after.queries().stream_stats - before.queries().stream_stats,
        STREAMS as u64
    );

    // The same M requests as sequential single queries cost up to M
    // round-trips (a worker still inside its drain loop may pick up the
    // next query opportunistically, so the count can dip slightly below
    // M — but never down to the batched cost).
    let before = after;
    for key in &keys {
        let resp = fleet
            .query(key.id(), Query::StreamStats)
            .expect("query")
            .wait()
            .expect("wait");
        assert!(matches!(resp, QueryResponse::StreamStats(_)));
    }
    let after = fleet.fleet_stats().expect("stats");
    let single_trips = after.query_batches() - before.query_batches();
    assert!(
        single_trips > involved.len() as u64 && single_trips <= STREAMS as u64,
        "M sequential queries cost ~M round-trips, got {single_trips}"
    );

    // A batch touching a single shard costs a single round-trip.
    let solo = &keys[0];
    let before = after;
    let responses = fleet
        .query_batch(&[
            (solo.id(), Query::Latest),
            (solo.id(), Query::Forecast { horizon: 2 }),
            (solo.id(), Query::OutlierMask),
        ])
        .expect("batch");
    assert!(responses.iter().all(|r| r.is_ok()));
    let after = fleet.fleet_stats().expect("stats");
    assert_eq!(after.query_batches() - before.query_batches(), 1);
    assert_eq!(after.queries().latest - before.queries().latest, 1);
    assert_eq!(after.queries().forecast - before.queries().forecast, 1);
    assert_eq!(
        after.queries().outlier_mask - before.queries().outlier_mask,
        1
    );

    fleet.shutdown().expect("shutdown");
}

/// Concurrent queries under ingest load: several threads hammer
/// `query_batch` across every stream while the ingest thread keeps
/// feeding slices. Nothing may panic (no stale-key drops are possible —
/// no model is ever quarantined here), every response must be answered,
/// and the per-kind query counters must add up exactly across shards.
#[test]
fn concurrent_query_batches_under_ingest_load() {
    const SHARDS: usize = 3;
    const STREAMS: usize = 9;
    const INGEST_STEPS: usize = 120;
    const QUERY_THREADS: usize = 3;
    const ROUNDS: usize = 40;

    let (fleet, keys) = fleet_with_streams(SHARDS, STREAMS);
    let ids: Vec<String> = keys.iter().map(|k| k.id().to_string()).collect();

    std::thread::scope(|scope| {
        // Query threads: each round issues one batch over every stream,
        // cycling the query kind per round.
        for thread in 0..QUERY_THREADS {
            let fleet = &fleet;
            let ids = &ids;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let query = match QueryKind::ALL[round % QueryKind::ALL.len()] {
                        QueryKind::Latest => Query::Latest,
                        QueryKind::Forecast => Query::Forecast {
                            horizon: 1 + round % 3,
                        },
                        QueryKind::OutlierMask => Query::OutlierMask,
                        QueryKind::StreamStats => Query::StreamStats,
                        QueryKind::Quantile => Query::Quantile {
                            metric: MetricKind::IngestLatency,
                            q: 0.99,
                        },
                    };
                    let requests: Vec<(&str, Query)> =
                        ids.iter().map(|id| (id.as_str(), query.clone())).collect();
                    let responses = fleet.query_batch(&requests).expect("engine is up");
                    assert_eq!(responses.len(), STREAMS);
                    for (i, resp) in responses.into_iter().enumerate() {
                        let resp = resp.unwrap_or_else(|e| {
                            panic!("thread {thread} round {round} stream {i}: {e}")
                        });
                        assert_eq!(resp.kind(), query.kind(), "responses align");
                    }
                }
            });
        }
        // The ingest thread runs concurrently with every query round.
        for t in 0..INGEST_STEPS {
            for key in &keys {
                fleet.ingest_blocking(key, slice(t as f64)).expect("ingest");
            }
        }
    });

    fleet.flush().expect("flush");
    let stats = fleet.fleet_stats().expect("stats");
    assert_eq!(stats.steps(), (STREAMS * INGEST_STEPS) as u64);
    assert_eq!(stats.dropped(), 0, "no stale-key drops under load");

    // Counter bookkeeping is exact under concurrency: every issued
    // request is counted once, under its kind, across shards.
    let per_kind = (QUERY_THREADS * (ROUNDS / QueryKind::ALL.len()) * STREAMS) as u64;
    let counters = stats.queries();
    for kind in QueryKind::ALL {
        assert_eq!(counters.get(kind), per_kind, "{kind} requests answered");
    }
    assert_eq!(counters.total(), (QUERY_THREADS * ROUNDS * STREAMS) as u64);
    assert_eq!(stats.query_queue_depth(), 0, "gauge settles at zero");

    fleet.shutdown().expect("shutdown");
}
