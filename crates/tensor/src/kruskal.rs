//! Kruskal operator, Khatri-Rao and Hadamard products (paper §III-A/B).
//!
//! Conventions follow Kolda & Bader ("Tensor Decompositions and
//! Applications", SIAM Review 2009), which the paper adopts: the mode-n
//! unfolding of a Kruskal tensor satisfies
//!
//! ```text
//! X_(n) = U⁽ⁿ⁾ · ( U⁽ᴺ⁾ ⊙ ⋯ ⊙ U⁽ⁿ⁺¹⁾ ⊙ U⁽ⁿ⁻¹⁾ ⊙ ⋯ ⊙ U⁽¹⁾ )ᵀ
//! ```
//!
//! which is property-tested against [`crate::unfold`].

use crate::dense::DenseTensor;
use crate::matrix::Matrix;
use crate::shape::Shape;

/// Khatri-Rao (column-wise Kronecker) product `A ⊙ B` (Eq. (1)).
///
/// For `A ∈ R^{I×R}` and `B ∈ R^{J×R}`, the result is `(I·J) × R` with
/// row `i·J + j` equal to the element-wise product of `A`'s row `i` and
/// `B`'s row `j`.
pub fn khatri_rao(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "Khatri-Rao rank mismatch");
    let r = a.cols();
    let mut out = Matrix::zeros(a.rows() * b.rows(), r);
    for i in 0..a.rows() {
        let arow = a.row(i);
        for j in 0..b.rows() {
            let brow = b.row(j);
            let orow = out.row_mut(i * b.rows() + j);
            for k in 0..r {
                orow[k] = arow[k] * brow[k];
            }
        }
    }
    out
}

/// Sequential Khatri-Rao product `M₁ ⊙ M₂ ⊙ ⋯ ⊙ Mₖ` folding left to right.
///
/// # Panics
/// Panics if `mats` is empty or ranks mismatch.
pub fn khatri_rao_seq(mats: &[&Matrix]) -> Matrix {
    assert!(!mats.is_empty(), "need at least one matrix");
    let mut acc = mats[0].clone();
    for m in &mats[1..] {
        acc = khatri_rao(&acc, m);
    }
    acc
}

/// Hadamard (element-wise) product of two equally sized matrices.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "Hadamard shape mismatch");
    assert_eq!(a.cols(), b.cols(), "Hadamard shape mismatch");
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| x * y)
        .collect();
    Matrix::from_vec(a.rows(), a.cols(), data)
}

/// Hadamard product of the Gram matrices of every factor except mode `skip`:
/// `⊛_{l≠skip} (U⁽ˡ⁾ᵀ U⁽ˡ⁾)`. This is the normal matrix of the classic
/// fully-observed ALS update and is used by baseline factorizers.
pub fn gram_hadamard_excluding(factors: &[&Matrix], skip: usize) -> Matrix {
    assert!(!factors.is_empty());
    let r = factors[0].cols();
    let mut acc = Matrix::from_vec(r, r, vec![1.0; r * r]);
    for (n, f) in factors.iter().enumerate() {
        if n == skip {
            continue;
        }
        acc = hadamard(&acc, &f.gram());
    }
    acc
}

/// Evaluates a single entry of the Kruskal tensor
/// `⟦U⁽¹⁾, …, U⁽ᴺ⁾⟧` at multi-index `index`:
/// `Σ_r Π_n U⁽ⁿ⁾[iₙ, r]`.
#[inline]
pub fn kruskal_at(factors: &[&Matrix], index: &[usize]) -> f64 {
    debug_assert_eq!(factors.len(), index.len());
    let r = factors[0].cols();
    let mut sum = 0.0;
    for k in 0..r {
        let mut prod = 1.0;
        for (f, &i) in factors.iter().zip(index) {
            prod *= f.row(i)[k];
        }
        sum += prod;
    }
    sum
}

/// Evaluates a single entry of the Kruskal tensor built from `(N-1)`
/// non-temporal factors and one temporal row vector `w`
/// (`⟦{U⁽ⁿ⁾}, u⁽ᴺ⁾_t⟧` in the paper's streaming notation, Eq. (20)).
#[inline]
pub fn kruskal_at_with_vec(factors: &[&Matrix], index: &[usize], w: &[f64]) -> f64 {
    debug_assert_eq!(factors.len(), index.len());
    let r = w.len();
    let mut sum = 0.0;
    for k in 0..r {
        let mut prod = w[k];
        for (f, &i) in factors.iter().zip(index) {
            prod *= f.row(i)[k];
        }
        sum += prod;
    }
    sum
}

/// Materializes the full Kruskal tensor `⟦U⁽¹⁾, …, U⁽ᴺ⁾⟧`.
pub fn kruskal(factors: &[&Matrix]) -> DenseTensor {
    assert!(!factors.is_empty(), "need at least one factor");
    let r = factors[0].cols();
    for f in factors {
        assert_eq!(f.cols(), r, "all factors must share the rank");
    }
    let dims: Vec<usize> = factors.iter().map(|f| f.rows()).collect();
    let shape = Shape::new(&dims);
    let mut idx = vec![0usize; shape.order()];
    let mut data = Vec::with_capacity(shape.len());
    for off in 0..shape.len() {
        shape.unravel_into(off, &mut idx);
        data.push(kruskal_at(factors, &idx));
    }
    DenseTensor::from_vec(shape, data)
}

/// Materializes the `(N-1)`-way slice `⟦{U⁽ⁿ⁾}ₙ, w⟧` given non-temporal
/// factors and a temporal row vector — the predicted subtensor `Ŷ_{t|t-1}`
/// of Eq. (20).
pub fn kruskal_slice(factors: &[&Matrix], w: &[f64]) -> DenseTensor {
    assert!(!factors.is_empty(), "need at least one factor");
    let dims: Vec<usize> = factors.iter().map(|f| f.rows()).collect();
    let shape = Shape::new(&dims);
    let mut idx = vec![0usize; shape.order()];
    let mut data = Vec::with_capacity(shape.len());
    for off in 0..shape.len() {
        shape.unravel_into(off, &mut idx);
        data.push(kruskal_at_with_vec(factors, &idx, w));
    }
    DenseTensor::from_vec(shape, data)
}

/// Squared Frobenius norm of a Kruskal tensor computed in factored form:
/// `‖⟦U⁽¹⁾,…,U⁽ᴺ⁾⟧‖²_F = 1ᵀ (⊛ₙ U⁽ⁿ⁾ᵀU⁽ⁿ⁾) 1` — cheap even for huge
/// virtual tensors.
pub fn kruskal_norm_sq(factors: &[&Matrix]) -> f64 {
    assert!(!factors.is_empty());
    let r = factors[0].cols();
    let mut acc = Matrix::from_vec(r, r, vec![1.0; r * r]);
    for f in factors {
        acc = hadamard(&acc, &f.gram());
    }
    acc.data().iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn khatri_rao_matches_definition() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 10.0]]);
        let kr = khatri_rao(&a, &b);
        assert_eq!(kr.rows(), 6);
        assert_eq!(kr.cols(), 2);
        // Row (i=1, j=2) => index 1*3+2 = 5: [3*9, 4*10].
        assert_eq!(kr.row(5), &[27.0, 40.0]);
        // Row (i=0, j=0): [1*5, 2*6].
        assert_eq!(kr.row(0), &[5.0, 12.0]);
    }

    #[test]
    fn kruskal_rank1_outer_product() {
        let u = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let v = Matrix::from_rows(&[&[3.0], &[4.0], &[5.0]]);
        let x = kruskal(&[&u, &v]);
        assert_eq!(x.shape().dims(), &[2, 3]);
        assert_eq!(x.get(&[1, 2]), 10.0);
        assert_eq!(x.get(&[0, 0]), 3.0);
    }

    #[test]
    fn kruskal_at_matches_materialized() {
        let mut rng = SmallRng::seed_from_u64(23);
        let u = Matrix::random_uniform(3, 2, -1.0, 1.0, &mut rng);
        let v = Matrix::random_uniform(4, 2, -1.0, 1.0, &mut rng);
        let w = Matrix::random_uniform(5, 2, -1.0, 1.0, &mut rng);
        let x = kruskal(&[&u, &v, &w]);
        for idx in x.shape().indices() {
            let direct = kruskal_at(&[&u, &v, &w], &idx);
            assert!((direct - x.get(&idx)).abs() < 1e-12);
        }
    }

    #[test]
    fn kruskal_slice_matches_full_tensor_slice() {
        let mut rng = SmallRng::seed_from_u64(31);
        let u = Matrix::random_uniform(3, 2, -1.0, 1.0, &mut rng);
        let v = Matrix::random_uniform(4, 2, -1.0, 1.0, &mut rng);
        let temporal = Matrix::random_uniform(6, 2, -1.0, 1.0, &mut rng);
        let full = kruskal(&[&u, &v, &temporal]);
        for t in 0..6 {
            let slice = kruskal_slice(&[&u, &v], temporal.row(t));
            for i in 0..3 {
                for j in 0..4 {
                    assert!((slice.get(&[i, j]) - full.get(&[i, j, t])).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn gram_hadamard_excluding_matches_manual() {
        let mut rng = SmallRng::seed_from_u64(5);
        let u = Matrix::random_uniform(3, 2, -1.0, 1.0, &mut rng);
        let v = Matrix::random_uniform(4, 2, -1.0, 1.0, &mut rng);
        let w = Matrix::random_uniform(5, 2, -1.0, 1.0, &mut rng);
        let g = gram_hadamard_excluding(&[&u, &v, &w], 1);
        let manual = hadamard(&u.gram(), &w.gram());
        assert!(g.diff_norm(&manual) < 1e-12);
    }

    #[test]
    fn kruskal_norm_sq_matches_dense() {
        let mut rng = SmallRng::seed_from_u64(77);
        let u = Matrix::random_uniform(3, 3, -1.0, 1.0, &mut rng);
        let v = Matrix::random_uniform(4, 3, -1.0, 1.0, &mut rng);
        let w = Matrix::random_uniform(2, 3, -1.0, 1.0, &mut rng);
        let dense = kruskal(&[&u, &v, &w]);
        let nf = dense.frobenius_norm();
        let factored = kruskal_norm_sq(&[&u, &v, &w]);
        assert!((factored - nf * nf).abs() < 1e-9);
    }

    #[test]
    fn khatri_rao_seq_associates() {
        let mut rng = SmallRng::seed_from_u64(13);
        let a = Matrix::random_uniform(2, 2, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(3, 2, -1.0, 1.0, &mut rng);
        let c = Matrix::random_uniform(2, 2, -1.0, 1.0, &mut rng);
        let left = khatri_rao(&khatri_rao(&a, &b), &c);
        let seq = khatri_rao_seq(&[&a, &b, &c]);
        assert!(left.diff_norm(&seq) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn khatri_rao_rank_mismatch_panics() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        khatri_rao(&a, &b);
    }
}
