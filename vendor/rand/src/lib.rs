//! A self-contained, dependency-free stand-in for the [`rand`] crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the *exact* API surface it consumes:
//!
//! * [`SeedableRng::seed_from_u64`] — deterministic construction;
//! * [`Rng::gen`] for `f64` / `f32` / `bool` / unsigned integers;
//! * [`Rng::gen_range`] over half-open integer and float ranges;
//! * [`Rng::gen_bool`];
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic generator
//!   (xoshiro256++, the same family the real `SmallRng` uses on 64-bit
//!   targets).
//!
//! The streams are **not** bit-compatible with the real `rand` crate —
//! they do not need to be; every consumer in the workspace only relies on
//! determinism under a fixed seed, which this crate provides.
//!
//! [`rand`]: https://crates.io/crates/rand

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64` seed (via SplitMix64
    /// expansion, so nearby seeds yield unrelated streams).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the standard seed-expansion function.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types sampleable uniformly from a generator's "standard" distribution
/// (`[0, 1)` for floats, all values for integers, a fair coin for `bool`).
pub trait StandardSample: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of `% span` is avoided for free.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    #[inline]
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG — xoshiro256++ by Blackman
    /// and Vigna, the algorithm behind the real `SmallRng` on 64-bit
    /// platforms. Passes BigCrush; period `2^256 − 1`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // All-zero state is the one forbidden point of the cycle;
            // SplitMix64 never produces four zero words from any seed,
            // but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    /// Alias so code written against the real crate's `StdRng` compiles;
    /// statistically this is still xoshiro256++ (not a CSPRNG).
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
