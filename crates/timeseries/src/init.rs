//! Conventional initialization of Holt-Winters components from the first
//! seasons of a series (Hyndman & Athanasopoulos, "Forecasting: principles
//! and practice", the reference the paper follows for HW conventions).
//!
//! Given at least two full seasons of data:
//! * the initial **level** is the mean of the first season;
//! * the initial **trend** is the average per-step change between the first
//!   and second season means;
//! * the initial **seasonal components** are the average deviations of each
//!   phase from its season's (detrended) mean, normalized to sum to zero.

use crate::holt_winters::HwState;

/// Error returned when a series is too short to initialize from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooShort {
    /// Number of observations required.
    pub needed: usize,
    /// Number of observations given.
    pub got: usize,
}

impl std::fmt::Display for TooShort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "series too short for Holt-Winters initialization: need {} observations, got {}",
            self.needed, self.got
        )
    }
}

impl std::error::Error for TooShort {}

/// Estimates initial `(level, trend, seasonal)` components from the first
/// `k ≥ 2` full seasons of `series` with period `m`.
///
/// Returns an [`HwState`] positioned at phase 0 — i.e., representing the
/// state *before* the first observation, ready to be run forward over the
/// series.
pub fn initial_state(series: &[f64], m: usize) -> Result<HwState, TooShort> {
    assert!(m >= 1, "seasonal period must be positive");
    let needed = 2 * m;
    if series.len() < needed {
        return Err(TooShort {
            needed,
            got: series.len(),
        });
    }
    let k = series.len() / m; // number of complete seasons available
    let season_means: Vec<f64> = (0..k)
        .map(|s| series[s * m..(s + 1) * m].iter().sum::<f64>() / m as f64)
        .collect();

    let level = season_means[0];
    // Average per-step trend across consecutive season means.
    let trend = (season_means[k - 1] - season_means[0]) / (((k - 1) * m) as f64);

    // Seasonal components: average deviation of each phase from its
    // season's mean, across all complete seasons.
    let mut seasonal = vec![0.0; m];
    for (phase, s_val) in seasonal.iter_mut().enumerate() {
        let mut acc = 0.0;
        for s in 0..k {
            acc += series[s * m + phase] - season_means[s];
        }
        *s_val = acc / k as f64;
    }
    // Normalize to zero sum (the additive-seasonality identifiability
    // convention).
    let mean_s = seasonal.iter().sum::<f64>() / m as f64;
    for s in &mut seasonal {
        *s -= mean_s;
    }

    // The state represents time "just before" observation 0: back the level
    // up by one trend step so that the first forecast l + b + s_0 targets
    // the first observation's season mean + seasonal offset.
    Ok(HwState::new(level - trend, trend, seasonal, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::holt_winters::{HoltWinters, HwParams};

    #[test]
    fn too_short_is_reported() {
        let err = initial_state(&[1.0, 2.0, 3.0], 4).unwrap_err();
        assert_eq!(err.needed, 8);
        assert_eq!(err.got, 3);
        assert!(err.to_string().contains("too short"));
    }

    #[test]
    fn pure_seasonal_series_recovers_components() {
        let pattern = [2.0, -1.0, 0.5, -1.5];
        let series: Vec<f64> = (0..12).map(|t| pattern[t % 4]).collect();
        let st = initial_state(&series, 4).unwrap();
        assert!(st.level.abs() < 1e-9, "level {}", st.level);
        assert!(st.trend.abs() < 1e-9, "trend {}", st.trend);
        for (p, &expect) in pattern.iter().enumerate() {
            assert!((st.seasonal[p] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_trend_series_recovers_trend() {
        let series: Vec<f64> = (0..20).map(|t| 3.0 + 0.5 * t as f64).collect();
        let st = initial_state(&series, 5).unwrap();
        assert!((st.trend - 0.5).abs() < 1e-9, "trend {}", st.trend);
        // Seasonal components ≈ 0 except for the in-season ramp which
        // deviates symmetrically; their sum must be ~0.
        let sum: f64 = st.seasonal.iter().sum();
        assert!(sum.abs() < 1e-9);
    }

    #[test]
    fn seasonal_components_sum_to_zero() {
        let series: Vec<f64> = (0..24)
            .map(|t| 10.0 + 0.3 * t as f64 + [4.0, 0.0, -4.0][t % 3])
            .collect();
        let st = initial_state(&series, 3).unwrap();
        let sum: f64 = st.seasonal.iter().sum();
        assert!(sum.abs() < 1e-9);
    }

    #[test]
    fn initialized_model_forecasts_trend_plus_season_well() {
        // Full pipeline: init from 3 seasons, run model, check errors shrink.
        let pattern = [1.0, -2.0, 3.0, -2.0];
        let series: Vec<f64> = (0..32)
            .map(|t| 5.0 + 0.25 * t as f64 + pattern[t % 4])
            .collect();
        let st = initial_state(&series[..12], 4).unwrap();
        let mut hw = HoltWinters::new(HwParams::new(0.2, 0.05, 0.1), st);
        let errs = hw.run(&series);
        // Late errors should be small.
        let late_rmse = (errs[20..].iter().map(|e| e * e).sum::<f64>() / 12.0).sqrt();
        assert!(late_rmse < 0.2, "late rmse {late_rmse}");
    }
}
